package betadnf

import (
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/boolform"
)

func randProbs(r *rand.Rand, n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range out {
		d := int64(1 + r.Intn(8))
		out[i] = big.NewRat(r.Int63n(d+1), d)
	}
	return out
}

// intervalToDNF converts an interval system to a generic DNF for the
// Shannon oracle.
func intervalToDNF(s *IntervalSystem) *boolform.DNF {
	f := boolform.NewDNF(s.NumVars)
	for _, c := range s.Clauses {
		var vars []boolform.Var
		for v := c.Lo; v <= c.Hi; v++ {
			vars = append(vars, boolform.Var(v))
		}
		f.AddClause(vars...)
	}
	return f
}

func TestIntervalKnownValues(t *testing.T) {
	half := big.NewRat(1, 2)
	// Single interval [0,1] over two coins: probability 1/4.
	s := &IntervalSystem{NumVars: 2, Clauses: []Interval{{0, 1}}}
	got, err := s.Prob([]*big.Rat{half, half})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("Prob = %s, want 1/4", got.RatString())
	}
	// Two disjoint singletons: 1 − (1/2)² = 3/4.
	s2 := &IntervalSystem{NumVars: 2, Clauses: []Interval{{0, 0}, {1, 1}}}
	got2, _ := s2.Prob([]*big.Rat{half, half})
	if got2.Cmp(big.NewRat(3, 4)) != 0 {
		t.Fatalf("Prob = %s, want 3/4", got2.RatString())
	}
}

func TestIntervalEdgeCases(t *testing.T) {
	s := &IntervalSystem{NumVars: 3}
	p, err := s.Prob(randProbs(rand.New(rand.NewSource(1)), 3))
	if err != nil || p.Sign() != 0 {
		t.Fatalf("no clauses must give 0, got %v %v", p, err)
	}
	s.Clauses = []Interval{{2, 1}} // empty interval: true
	p, err = s.Prob(randProbs(rand.New(rand.NewSource(1)), 3))
	if err != nil || p.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("empty clause must give 1, got %v %v", p, err)
	}
	s.Clauses = []Interval{{0, 5}}
	if _, err := s.Prob(randProbs(rand.New(rand.NewSource(1)), 3)); err == nil {
		t.Fatal("out-of-range clause accepted")
	}
	if _, err := (&IntervalSystem{NumVars: 2}).Prob(randProbs(rand.New(rand.NewSource(1)), 3)); err == nil {
		t.Fatal("probability length mismatch accepted")
	}
}

// TestIntervalMatchesOracle cross-checks the DP against Shannon expansion
// on random interval systems.
func TestIntervalMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(10)
		s := &IntervalSystem{NumVars: n}
		for k := r.Intn(5); k > 0; k-- {
			lo := r.Intn(n)
			hi := lo + r.Intn(n-lo)
			s.Clauses = append(s.Clauses, Interval{lo, hi})
		}
		probs := randProbs(r, n)
		got, err := s.Prob(probs)
		if err != nil {
			t.Fatal(err)
		}
		want := intervalToDNF(s).ShannonProb(probs)
		if got.Cmp(want) != 0 {
			t.Fatalf("interval DP mismatch on %v: got %s, want %s", s.Clauses, got.RatString(), want.RatString())
		}
	}
}

// chainToDNF converts a chain system to a generic DNF over node indices
// (variable v = edge above node v).
func chainToDNF(c *ChainSystem) *boolform.DNF {
	f := boolform.NewDNF(len(c.Parent))
	for v, l := range c.ChainLen {
		if l == 0 {
			continue
		}
		var vars []boolform.Var
		cur := v
		for k := 0; k < l; k++ {
			vars = append(vars, boolform.Var(cur))
			cur = c.Parent[cur]
		}
		f.AddClause(vars...)
	}
	return f
}

func randForest(r *rand.Rand, n int) []int {
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		if i == 0 || r.Intn(4) == 0 {
			parent[i] = -1
		} else {
			parent[i] = r.Intn(i)
		}
	}
	return parent
}

func depths(parent []int) []int {
	d := make([]int, len(parent))
	for i := range parent {
		if parent[i] >= 0 {
			d[i] = d[parent[i]] + 1
		}
	}
	return d
}

func TestChainKnownValues(t *testing.T) {
	half := big.NewRat(1, 2)
	// Path of 2 edges: root 0, 0→1, 1→2; clause of length 2 at node 2.
	c := &ChainSystem{Parent: []int{-1, 0, 1}, ChainLen: []int{0, 0, 2}}
	got, err := c.Prob([]*big.Rat{nil, half, half})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("Prob = %s, want 1/4", got.RatString())
	}
}

func TestChainValidation(t *testing.T) {
	// Chain longer than depth must be rejected.
	c := &ChainSystem{Parent: []int{-1, 0}, ChainLen: []int{0, 5}}
	if err := c.Validate(); err == nil {
		t.Fatal("overlong chain accepted")
	}
	// Parent cycle must be rejected.
	c2 := &ChainSystem{Parent: []int{1, 0}, ChainLen: []int{0, 0}}
	if err := c2.Validate(); err == nil {
		t.Fatal("parent cycle accepted")
	}
}

// TestChainMatchesOracle cross-checks the forest DP against Shannon
// expansion on random forests with random clauses.
func TestChainMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(10)
		parent := randForest(r, n)
		d := depths(parent)
		chain := make([]int, n)
		for v := 0; v < n; v++ {
			if d[v] > 0 && r.Intn(3) == 0 {
				chain[v] = 1 + r.Intn(d[v])
			}
		}
		c := &ChainSystem{Parent: parent, ChainLen: chain}
		probs := randProbs(r, n)
		got, err := c.Prob(probs)
		if err != nil {
			t.Fatal(err)
		}
		want := chainToDNF(c).ShannonProb(probs)
		if got.Cmp(want) != 0 {
			t.Fatalf("chain DP mismatch: parent=%v chain=%v got=%s want=%s",
				parent, chain, got.RatString(), want.RatString())
		}
	}
}

func TestChainNoClauses(t *testing.T) {
	c := &ChainSystem{Parent: []int{-1, 0}, ChainLen: []int{0, 0}}
	p, err := c.Prob([]*big.Rat{nil, big.NewRat(1, 2)})
	if err != nil || p.Sign() != 0 {
		t.Fatalf("no clauses must give 0, got %v %v", p, err)
	}
}
