// Package betadnf implements polynomial-time exact probability
// computation for the two families of β-acyclic positive DNF formulas
// produced by the tractable lineage constructions of §4.2 of the paper:
//
//   - interval systems: the variables are the edges of a path instance in
//     order, and every clause is a contiguous interval of variables
//     (the lineages of Proposition 4.11 on 2WP instances);
//   - chain systems: the variables are the parent edges of a forest, and
//     every clause is an ancestor chain of consecutive edges ending at a
//     node (the lineages of Proposition 4.10 on DWT instances).
//
// Both families are β-acyclic — clauses containing the path's (resp. a
// leaf's) last variable are totally ordered by inclusion, which yields a
// β-elimination order — and both evaluators run in O(variables × longest
// clause) arithmetic operations, realizing the PTIME bound that the paper
// obtains by reduction to the β-acyclic #CSPd algorithm of
// Brault-Baron, Capelli and Mengel (Theorem 4.9). See DESIGN.md for this
// documented substitution.
package betadnf
