package betadnf

import (
	"fmt"
	"math/big"
)

// This file lowers the two β-acyclic evaluators to flat instruction
// streams. Both dynamic programs have a trellis fixed entirely by the
// system's structure — which states are reachable, which clause fires
// at which step — so the per-assignment arithmetic unrolls into
// straight-line loads, multiplications, additions and complementations
// against an OpEmitter (in practice the Program builder of
// internal/plan). The emitted code performs exactly the arithmetic of
// Prob, so its exact rational result is identical.

// OpEmitter receives the flattened arithmetic of EmitOps. Load yields
// the probability of system variable v (the emitter owns the mapping
// from variables to whatever backs them, e.g. instance edges);
// Release returns a register whose value is no longer needed, bounding
// the register file by peak liveness. Implemented by plan.Builder
// adapters.
type OpEmitter interface {
	Load(v int) uint32
	Const(v *big.Rat) uint32
	Mul(a, b uint32) uint32
	Add(a, b uint32) uint32
	OneMinus(a uint32) uint32
	Release(r uint32)
	// Failed reports the emitter's sticky-error state (a lowering bug
	// or a cancelled context — plan.Builder polls its context from
	// inside the emit methods). The dynamic-program loops below consult
	// it at their outer steps and abandon the remaining trellis:
	// emission after a failure would be no-ops anyway, and breaking out
	// is what makes a cancelled compile return within one checkpoint
	// interval instead of walking the whole structure.
	Failed() bool
}

var (
	emitOne  = big.NewRat(1, 1)
	emitZero = new(big.Rat)
)

// EmitOps lowers the chain dynamic program of Prob to flat ops,
// returning the register holding the final probability. The emitted
// program computes, like Prob, the complementary probability f(v, s)
// over live subtrees only, with the node probabilities loaded once per
// child.
func (cc *CompiledChain) EmitOps(em OpEmitter) (uint32, error) {
	if cc.cap0 == 0 {
		return em.Const(emitZero), nil
	}
	n := len(cc.chainLen)
	// f[v][s] = register holding f(v, s), for live v in traversal order.
	f := make([][]uint32, n)
	for i := len(cc.order) - 1; i >= 0; i-- {
		if em.Failed() {
			return 0, nil // sticky error; Finish reports it
		}
		v := cc.order[i]
		// Load p and 1−p once per live child (Prob recomputes q per
		// state; the value is identical).
		type childReg struct {
			u    int
			p, q uint32
		}
		var kids []childReg
		for _, u := range cc.children[v] {
			if !cc.live[u] {
				continue // f[u] ≡ 1: the child's factor is q + p = 1
			}
			p := em.Load(u)
			kids = append(kids, childReg{u: u, p: p, q: em.OneMinus(p)})
		}
		fv := make([]uint32, cc.cap0+1)
		for s := 0; s <= cc.cap0; s++ {
			acc := em.Const(emitOne)
			for _, k := range kids {
				// Edge to u absent: child streak 0.
				term := em.Mul(k.q, f[k.u][0])
				// Edge to u present: streak extends; clause at u may fire.
				ns := s + 1
				if ns > cc.cap0 {
					ns = cc.cap0
				}
				if !(cc.chainLen[k.u] != 0 && ns >= cc.chainLen[k.u]) {
					t := em.Mul(k.p, f[k.u][ns])
					sum := em.Add(term, t)
					em.Release(term)
					em.Release(t)
					term = sum
				}
				next := em.Mul(acc, term)
				em.Release(acc)
				em.Release(term)
				acc = next
			}
			fv[s] = acc
		}
		// The children's states are fully consumed by this node.
		for _, k := range kids {
			em.Release(k.p)
			em.Release(k.q)
			for _, r := range f[k.u] {
				em.Release(r)
			}
			f[k.u] = nil
		}
		f[v] = fv
	}
	alive := em.Const(emitOne)
	for _, r := range cc.roots {
		if !cc.live[r] {
			continue
		}
		next := em.Mul(alive, f[r][0])
		em.Release(alive)
		for _, fr := range f[r] {
			em.Release(fr)
		}
		alive = next
	}
	out := em.OneMinus(alive)
	em.Release(alive)
	return out, nil
}

// EmitOps lowers the interval dynamic program of Prob to flat ops,
// returning the register holding the final probability. Streak states
// that are structurally unreachable at a scan position (the symbolic
// analogue of Prob skipping zero-weight states) emit no code.
func (s *IntervalSystem) EmitOps(em OpEmitter) (uint32, error) {
	maxLen := 0
	minEnd := make([]int, s.NumVars)
	for _, c := range s.Clauses {
		if c.Hi < c.Lo {
			return em.Const(emitOne), nil // empty clause: formula is true
		}
		if c.Lo < 0 || c.Hi >= s.NumVars {
			return 0, fmt.Errorf("betadnf: clause [%d,%d] out of range", c.Lo, c.Hi)
		}
		l := c.Hi - c.Lo + 1
		if l > maxLen {
			maxLen = l
		}
		if minEnd[c.Hi] == 0 || l < minEnd[c.Hi] {
			minEnd[c.Hi] = l
		}
	}
	if len(s.Clauses) == 0 {
		return em.Const(emitZero), nil // false
	}
	// cur[st] = register holding the survival weight of streak st;
	// curOK marks states reachable at this position.
	cur := make([]uint32, maxLen+1)
	curOK := make([]bool, maxLen+1)
	cur[0] = em.Const(emitOne)
	curOK[0] = true
	for r := 0; r < s.NumVars; r++ {
		if em.Failed() {
			return 0, nil // sticky error; Finish reports it
		}
		p := em.Load(r)
		q := em.OneMinus(p)
		next := make([]uint32, maxLen+1)
		nextOK := make([]bool, maxLen+1)
		accum := func(st int, reg uint32) {
			if nextOK[st] {
				sum := em.Add(next[st], reg)
				em.Release(next[st])
				em.Release(reg)
				next[st] = sum
				return
			}
			next[st] = reg
			nextOK[st] = true
		}
		for st := 0; st <= maxLen; st++ {
			if !curOK[st] {
				continue
			}
			// Variable r false: streak resets.
			accum(0, em.Mul(cur[st], q))
			// Variable r true: streak extends (capped).
			nst := st + 1
			if nst > maxLen {
				nst = maxLen
			}
			if minEnd[r] != 0 && nst >= minEnd[r] {
				continue // a clause ending at r fired: world lost
			}
			accum(nst, em.Mul(cur[st], p))
		}
		for st := 0; st <= maxLen; st++ {
			if curOK[st] {
				em.Release(cur[st])
			}
		}
		em.Release(p)
		em.Release(q)
		cur, curOK = next, nextOK
	}
	var alive uint32
	has := false
	for st := 0; st <= maxLen; st++ {
		if !curOK[st] {
			continue
		}
		if !has {
			alive, has = cur[st], true
			continue
		}
		sum := em.Add(alive, cur[st])
		em.Release(alive)
		em.Release(cur[st])
		alive = sum
	}
	if !has {
		alive = em.Const(emitZero) // unreachable: state 0 always survives
	}
	out := em.OneMinus(alive)
	em.Release(alive)
	return out, nil
}
