// Package boolform implements positive Boolean formulas in disjunctive
// normal form, valuations, and exact probability computation (the Boolean
// probability computation problem of Definition 4.2 of the paper). The
// Shannon-expansion evaluator here is an exponential-worst-case oracle
// used to validate the polynomial-time evaluators of package betadnf and
// the d-DNNF pipeline; it is not itself one of the paper's algorithms.
package boolform
