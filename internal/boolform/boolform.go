package boolform

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"phom/internal/phomerr"
)

// Var is a Boolean variable, identified by an index 0 … NumVars−1.
type Var int

// Clause is a conjunction of (positive) variables.
type Clause []Var

// DNF is a positive disjunctive normal form formula: a disjunction of
// clauses, each a conjunction of variables (Definition 4.3). The empty
// DNF is false; a DNF containing an empty clause is true.
type DNF struct {
	NumVars int
	Clauses []Clause
}

// NewDNF returns a DNF over n variables with no clauses (false).
func NewDNF(n int) *DNF { return &DNF{NumVars: n} }

// AddClause appends a clause after normalizing it (sorted, deduplicated).
// It panics on out-of-range variables.
func (f *DNF) AddClause(vars ...Var) {
	c := normalize(vars)
	for _, v := range c {
		if v < 0 || int(v) >= f.NumVars {
			panic(fmt.Sprintf("boolform: variable %d out of range (n=%d)", v, f.NumVars))
		}
	}
	f.Clauses = append(f.Clauses, c)
}

func normalize(vars []Var) Clause {
	c := make(Clause, len(vars))
	copy(c, vars)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, v := range c {
		if i == 0 || v != c[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Eval evaluates f under the valuation ν (indexed by variable).
func (f *DNF) Eval(nu []bool) bool {
	for _, c := range f.Clauses {
		sat := true
		for _, v := range c {
			if !nu[v] {
				sat = false
				break
			}
		}
		if sat {
			return true
		}
	}
	return false
}

// String renders the DNF for debugging, e.g. "(x0∧x2) ∨ (x1)".
func (f *DNF) String() string {
	if len(f.Clauses) == 0 {
		return "false"
	}
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		if len(c) == 0 {
			parts[i] = "true"
			continue
		}
		vs := make([]string, len(c))
		for j, v := range c {
			vs[j] = fmt.Sprintf("x%d", v)
		}
		parts[i] = "(" + strings.Join(vs, "∧") + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// Absorb removes clauses that are supersets of other clauses; the result
// is logically equivalent and contains only inclusion-minimal clauses.
func (f *DNF) Absorb() *DNF {
	cs := make([]Clause, len(f.Clauses))
	copy(cs, f.Clauses)
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) < len(cs[j])
		}
		return clauseLess(cs[i], cs[j])
	})
	out := NewDNF(f.NumVars)
	for _, c := range cs {
		sub := false
		for _, kept := range out.Clauses {
			if clauseSubset(kept, c) {
				sub = true
				break
			}
		}
		if !sub {
			out.Clauses = append(out.Clauses, c)
		}
	}
	return out
}

func clauseSubset(a, b Clause) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

func clauseLess(a, b Clause) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// BruteForceProb computes Pr(f, π) by enumerating all 2^NumVars
// valuations. Exponential; use only on small formulas.
func (f *DNF) BruteForceProb(probs []*big.Rat) *big.Rat {
	if len(probs) != f.NumVars {
		panic("boolform: probability vector length mismatch")
	}
	total := new(big.Rat)
	nu := make([]bool, f.NumVars)
	var rec func(i int, w *big.Rat)
	one := big.NewRat(1, 1)
	rec = func(i int, w *big.Rat) {
		if w.Sign() == 0 {
			return
		}
		if i == f.NumVars {
			if f.Eval(nu) {
				total.Add(total, w)
			}
			return
		}
		nu[i] = true
		rec(i+1, new(big.Rat).Mul(w, probs[i]))
		nu[i] = false
		rec(i+1, new(big.Rat).Mul(w, new(big.Rat).Sub(one, probs[i])))
	}
	rec(0, big.NewRat(1, 1))
	return total
}

// ShannonProb computes Pr(f, π) exactly by Shannon expansion on the most
// frequent variable, with absorption-based simplification and
// memoization. Worst case exponential, but far faster than enumeration on
// the structured lineages this library produces; it is the reference
// oracle for the PTIME evaluators.
func (f *DNF) ShannonProb(probs []*big.Rat) *big.Rat {
	r, err := f.ShannonProbContext(context.Background(), probs)
	if err != nil {
		panic(err) // unreachable: the background context never fires
	}
	return r
}

// ShannonProbContext is ShannonProb with cooperative cancellation: the
// expansion polls ctx every phomerr.CheckInterval recursion steps, so a
// cancelled or deadlined context aborts even a worst-case exponential
// expansion within one checkpoint interval and returns the typed
// cancellation error. A run that completes is identical to ShannonProb.
func (f *DNF) ShannonProbContext(ctx context.Context, probs []*big.Rat) (*big.Rat, error) {
	if len(probs) != f.NumVars {
		panic("boolform: probability vector length mismatch")
	}
	memo := map[string]*big.Rat{}
	return shannon(f.Absorb().Clauses, probs, memo, phomerr.NewCheckpoint(ctx))
}

func shannon(clauses []Clause, probs []*big.Rat, memo map[string]*big.Rat, cp *phomerr.Checkpoint) (*big.Rat, error) {
	if len(clauses) == 0 {
		return new(big.Rat), nil // false
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return big.NewRat(1, 1), nil // contains true
		}
	}
	// The recursion checkpoint: each expansion node costs an absorption
	// pass and a memo probe, so polling per node keeps the abort within
	// one CheckInterval of the cancellation even on expansions whose
	// memo table no longer fits the structured-lineage fast case.
	if err := cp.Check(); err != nil {
		return nil, err
	}
	key := clausesKey(clauses)
	if r, ok := memo[key]; ok {
		return r, nil
	}
	x := mostFrequentVar(clauses)
	p := probs[x]
	one := big.NewRat(1, 1)

	// Condition on x = 1: drop x from clauses; on x = 0: drop clauses
	// containing x.
	var pos, neg []Clause
	for _, c := range clauses {
		if idx := clauseFind(c, x); idx >= 0 {
			nc := make(Clause, 0, len(c)-1)
			nc = append(nc, c[:idx]...)
			nc = append(nc, c[idx+1:]...)
			pos = append(pos, nc)
		} else {
			pos = append(pos, c)
			neg = append(neg, c)
		}
	}
	pos = absorbClauses(pos)
	neg = absorbClauses(neg)

	rp, err := shannon(pos, probs, memo, cp)
	if err != nil {
		return nil, err
	}
	rn, err := shannon(neg, probs, memo, cp)
	if err != nil {
		return nil, err
	}
	res := new(big.Rat).Mul(p, rp)
	q := new(big.Rat).Sub(one, p)
	res.Add(res, q.Mul(q, rn))
	memo[key] = res
	return res, nil
}

func clauseFind(c Clause, x Var) int {
	for i, v := range c {
		if v == x {
			return i
		}
	}
	return -1
}

func mostFrequentVar(clauses []Clause) Var {
	count := map[Var]int{}
	for _, c := range clauses {
		for _, v := range c {
			count[v]++
		}
	}
	best, bestN := Var(-1), -1
	for v, n := range count {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

func absorbClauses(cs []Clause) []Clause {
	sorted := make([]Clause, len(cs))
	copy(sorted, cs)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i]) != len(sorted[j]) {
			return len(sorted[i]) < len(sorted[j])
		}
		return clauseLess(sorted[i], sorted[j])
	})
	var out []Clause
	for _, c := range sorted {
		sub := false
		for _, kept := range out {
			if clauseSubset(kept, c) {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, c)
		}
	}
	return out
}

func clausesKey(cs []Clause) string {
	sorted := make([]Clause, len(cs))
	copy(sorted, cs)
	sort.Slice(sorted, func(i, j int) bool { return clauseLess(sorted[i], sorted[j]) })
	var b strings.Builder
	for _, c := range sorted {
		for _, v := range c {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	return b.String()
}
