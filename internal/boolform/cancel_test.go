package boolform

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"phom/internal/phomerr"
)

// TestShannonProbContextPreCanceled is the ROADMAP item 2 regression:
// a context that is already canceled must abort a large Shannon
// expansion promptly with the typed cancellation error, instead of
// running the exponential recursion to completion.
func TestShannonProbContextPreCanceled(t *testing.T) {
	// Large enough that a missed checkpoint would make the test hang for
	// a human-noticeable time, small enough to stay cheap when polling
	// works (the abort fires within one CheckInterval of recursion
	// nodes, long before the expansion finishes).
	r := rand.New(rand.NewSource(7))
	f := randDNF(r, 60, 48, 4)
	probs := randProbs(r, f.NumVars)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := f.ShannonProbContext(ctx, probs)
	if err == nil {
		t.Fatalf("ShannonProbContext completed (%v) under a pre-canceled context", res)
	}
	if !errors.Is(err, phomerr.ErrCanceled) {
		t.Fatalf("ShannonProbContext error = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("ShannonProbContext returned a result alongside the error: %v", res)
	}
}

// TestShannonProbContextCompletesEqual pins that a run that completes
// under a live context is byte-identical to the context-free
// ShannonProb.
func TestShannonProbContextCompletesEqual(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		f := randDNF(r, 10, 6, 3)
		probs := randProbs(r, f.NumVars)
		want := f.ShannonProb(probs)
		got, err := f.ShannonProbContext(context.Background(), probs)
		if err != nil {
			t.Fatalf("ShannonProbContext: %v", err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("ShannonProbContext = %v, ShannonProb = %v", got, want)
		}
	}
}
