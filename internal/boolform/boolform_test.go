package boolform

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratHalfs(n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range out {
		out[i] = big.NewRat(1, 2)
	}
	return out
}

func randProbs(r *rand.Rand, n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range out {
		d := int64(1 + r.Intn(8))
		out[i] = big.NewRat(r.Int63n(d+1), d)
	}
	return out
}

func randDNF(r *rand.Rand, n, clauses, width int) *DNF {
	f := NewDNF(n)
	for c := 0; c < clauses; c++ {
		w := 1 + r.Intn(width)
		vars := make([]Var, w)
		for i := range vars {
			vars[i] = Var(r.Intn(n))
		}
		f.AddClause(vars...)
	}
	return f
}

func TestEvalBasics(t *testing.T) {
	f := NewDNF(3)
	f.AddClause(0, 1)
	f.AddClause(2)
	cases := []struct {
		nu   []bool
		want bool
	}{
		{[]bool{true, true, false}, true},
		{[]bool{true, false, false}, false},
		{[]bool{false, false, true}, true},
		{[]bool{false, false, false}, false},
	}
	for _, c := range cases {
		if got := f.Eval(c.nu); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.nu, got, c.want)
		}
	}
}

func TestEmptyAndTrueDNF(t *testing.T) {
	f := NewDNF(2)
	if f.Eval([]bool{true, true}) {
		t.Fatal("empty DNF must be false")
	}
	if f.BruteForceProb(ratHalfs(2)).Sign() != 0 {
		t.Fatal("empty DNF probability must be 0")
	}
	f.AddClause() // empty clause: true
	if !f.Eval([]bool{false, false}) {
		t.Fatal("empty clause must make the DNF true")
	}
	if f.ShannonProb(ratHalfs(2)).Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatal("true DNF probability must be 1")
	}
}

func TestClauseNormalization(t *testing.T) {
	f := NewDNF(4)
	f.AddClause(3, 1, 1, 3, 0)
	if len(f.Clauses[0]) != 3 {
		t.Fatalf("clause not deduplicated: %v", f.Clauses[0])
	}
	for i := 1; i < len(f.Clauses[0]); i++ {
		if f.Clauses[0][i-1] >= f.Clauses[0][i] {
			t.Fatalf("clause not sorted: %v", f.Clauses[0])
		}
	}
}

func TestAbsorb(t *testing.T) {
	f := NewDNF(3)
	f.AddClause(0)
	f.AddClause(0, 1)
	f.AddClause(1, 2)
	g := f.Absorb()
	if len(g.Clauses) != 2 {
		t.Fatalf("absorption kept %d clauses, want 2", len(g.Clauses))
	}
	// Equivalence under all valuations.
	for mask := 0; mask < 8; mask++ {
		nu := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if f.Eval(nu) != g.Eval(nu) {
			t.Fatalf("absorption changed semantics at %v", nu)
		}
	}
}

func TestKnownProbability(t *testing.T) {
	// x0 ∨ x1 with p0 = 1/2, p1 = 1/3: 1 − (1/2)(2/3) = 2/3.
	f := NewDNF(2)
	f.AddClause(0)
	f.AddClause(1)
	probs := []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 3)}
	want := big.NewRat(2, 3)
	if got := f.ShannonProb(probs); got.Cmp(want) != 0 {
		t.Fatalf("ShannonProb = %s, want %s", got.RatString(), want.RatString())
	}
	if got := f.BruteForceProb(probs); got.Cmp(want) != 0 {
		t.Fatalf("BruteForceProb = %s, want %s", got.RatString(), want.RatString())
	}
}

// TestShannonMatchesBruteForce is the oracle cross-check on random DNFs.
func TestShannonMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(8)
		f := randDNF(r, n, r.Intn(7), 4)
		probs := randProbs(r, n)
		bf := f.BruteForceProb(probs)
		sh := f.ShannonProb(probs)
		if bf.Cmp(sh) != 0 {
			t.Fatalf("mismatch on %v: brute=%s shannon=%s", f, bf.RatString(), sh.RatString())
		}
	}
}

// TestAbsorbPreservesSemantics is a quick-check property: Absorb never
// changes the truth value of a DNF.
func TestAbsorbPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	prop := func(seed int64, masks uint16) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		f := randDNF(rr, n, rr.Intn(6), 3)
		g := f.Absorb()
		nu := make([]bool, n)
		for i := range nu {
			nu[i] = masks&(1<<uint(i)) != 0
		}
		return f.Eval(nu) == g.Eval(nu)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestProbabilityMonotone: adding a clause never decreases probability.
func TestProbabilityMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(6)
		f := randDNF(r, n, 1+r.Intn(4), 3)
		probs := randProbs(r, n)
		before := f.ShannonProb(probs)
		g := &DNF{NumVars: n, Clauses: append([]Clause(nil), f.Clauses...)}
		g.AddClause(Var(r.Intn(n)))
		after := g.ShannonProb(probs)
		if after.Cmp(before) < 0 {
			t.Fatalf("probability decreased after adding a clause: %s -> %s", before.RatString(), after.RatString())
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := NewDNF(3)
	if f.String() != "false" {
		t.Fatalf("empty DNF renders as %q", f.String())
	}
	f.AddClause(0, 2)
	if f.String() != "(x0∧x2)" {
		t.Fatalf("render = %q", f.String())
	}
}
