package gen

import (
	"fmt"
	"math"
	"math/rand"

	"phom/internal/graph"
)

// Family identifies a workload generator family: the ten class-driven
// families of RandInClass plus the random-graph models of the benchmark
// literature (Erdős–Rényi, Barabási–Albert preferential attachment,
// power-law degree sequences à la Bayati et al.). Every family claims a
// graph.Class via Class, and RandFamily guarantees membership — the
// dispatch lattice of Tables 1–3 can therefore be exercised by
// realistic random topologies, not only by the hand-rolled class
// constructions.
type Family int

// The workload families. The first ten mirror graph.AllClasses; the
// last three are the random-graph models.
const (
	Fam1WP Family = iota
	Fam2WP
	FamDWT
	FamPT
	FamConnected
	FamU1WP
	FamU2WP
	FamUDWT
	FamUPT
	FamAll
	FamER   // Erdős–Rényi directed G(n, p)
	FamBA   // Barabási–Albert preferential attachment
	FamPLaw // power-law degree sequence, sequential stub pairing
	numFamilies
)

var familyNames = [numFamilies]string{
	"1wp", "2wp", "dwt", "pt", "connected",
	"u1wp", "u2wp", "udwt", "upt", "all",
	"er", "ba", "plaw",
}

// Families lists every workload family in a fixed order.
func Families() []Family {
	out := make([]Family, numFamilies)
	for i := range out {
		out[i] = Family(i)
	}
	return out
}

func (f Family) String() string {
	if f >= 0 && f < numFamilies {
		return familyNames[f]
	}
	return "family(?)"
}

// ParseFamily parses a family name as written on the phomgen command
// line ("er", "ba", "plaw", "1wp", "udwt", …).
func ParseFamily(s string) (Family, error) {
	for i, name := range familyNames {
		if s == name {
			return Family(i), nil
		}
	}
	return 0, fmt.Errorf("gen: unknown family %q (want one of %v)", s, familyNames)
}

// Class returns the graph.Class every graph of the family is guaranteed
// to land in: the exact class for the class-driven families, Connected
// for Barabási–Albert (every new vertex attaches to the existing
// component), and All for the unconstrained random models.
func (f Family) Class() graph.Class {
	switch f {
	case Fam1WP:
		return graph.Class1WP
	case Fam2WP:
		return graph.Class2WP
	case FamDWT:
		return graph.ClassDWT
	case FamPT:
		return graph.ClassPT
	case FamConnected, FamBA:
		return graph.ClassConnected
	case FamU1WP:
		return graph.ClassU1WP
	case FamU2WP:
		return graph.ClassU2WP
	case FamUDWT:
		return graph.ClassUDWT
	case FamUPT:
		return graph.ClassUPT
	}
	return graph.ClassAll
}

// RandFamily returns a random graph of the given family with roughly n
// vertices, using each model's default shape parameters (RandErdosRenyi
// and friends expose the knobs directly).
func RandFamily(r *rand.Rand, f Family, n int, labels []graph.Label) *graph.Graph {
	if n < 1 {
		n = 1
	}
	switch f {
	case FamER:
		p := 1.5 / math.Max(1, float64(n-1)) // mean out-degree ≈ 1.5
		return RandErdosRenyi(r, n, p, labels)
	case FamBA:
		return RandBarabasiAlbert(r, n, 2, labels)
	case FamPLaw:
		return RandPowerLaw(r, n, 2.5, labels)
	}
	return RandInClass(r, f.Class(), n, labels)
}

// RandErdosRenyi returns a directed G(n, p) graph: each of the n(n−1)
// ordered vertex pairs carries an edge independently with probability
// p. Pair enumeration uses geometric skipping (Batagelj–Brandes), so
// sparse graphs cost O(n + m) rather than O(n²).
func RandErdosRenyi(r *rand.Rand, n int, p float64, labels []graph.Label) *graph.Graph {
	g := graph.New(n)
	if n < 2 || p <= 0 {
		return g
	}
	total := n * (n - 1)
	if p >= 1 {
		for idx := 0; idx < total; idx++ {
			u, v := pairAt(idx, n)
			g.MustAddEdge(u, v, RandLabel(r, labels))
		}
		return g
	}
	logq := math.Log1p(-p)
	idx := -1
	for {
		// Geometric jump to the next present pair: skip ~Geom(p) pairs.
		idx += 1 + int(math.Log(1-r.Float64())/logq)
		if idx >= total || idx < 0 { // <0 on float overflow of a huge jump
			return g
		}
		u, v := pairAt(idx, n)
		g.MustAddEdge(u, v, RandLabel(r, labels))
	}
}

// pairAt maps a pair index in [0, n(n−1)) to the ordered pair (u, v),
// u ≠ v, enumerating the n−1 targets of each source in turn.
func pairAt(idx, n int) (graph.Vertex, graph.Vertex) {
	u := idx / (n - 1)
	v := idx % (n - 1)
	if v >= u {
		v++
	}
	return graph.Vertex(u), graph.Vertex(v)
}

// RandBarabasiAlbert returns a preferential-attachment graph: vertices
// arrive one at a time and attach min(m, existing) edges to distinct
// earlier vertices sampled proportionally to their current degree, each
// edge oriented by a fair coin. The underlying undirected graph is
// connected by construction, so the family's claimed class is
// Connected.
func RandBarabasiAlbert(r *rand.Rand, n, m int, labels []graph.Label) *graph.Graph {
	if m < 1 {
		m = 1
	}
	g := graph.New(n)
	if n < 2 {
		return g
	}
	// pool holds one entry per edge endpoint (plus the seed vertex), so
	// uniform sampling from it is degree-proportional sampling.
	pool := make([]int, 0, 2*m*n)
	pool = append(pool, 0)
	for v := 1; v < n; v++ {
		k := m
		if k > v {
			k = v
		}
		// Targets are collected into a slice, never iterated out of a
		// map: edge insertion order must be a pure function of r.
		targets := make([]int, 0, k)
		seen := make(map[int]bool, k)
		for len(targets) < k {
			t := pool[r.Intn(len(pool))]
			if !seen[t] {
				seen[t] = true
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			if r.Intn(2) == 0 {
				g.MustAddEdge(graph.Vertex(v), graph.Vertex(t), RandLabel(r, labels))
			} else {
				g.MustAddEdge(graph.Vertex(t), graph.Vertex(v), RandLabel(r, labels))
			}
			pool = append(pool, v, t)
		}
	}
	return g
}

// RandPowerLaw returns a graph whose degree sequence follows a
// truncated power law Pr[d] ∝ d^−alpha, d ∈ [1, √n]: each vertex draws
// a degree, and stubs are paired sequentially after a seeded shuffle
// with self-loops and duplicate pairs erased — a simplified sequential
// construction in the spirit of Bayati, Kim and Saberi. Orientation is
// a fair coin per edge; no connectivity is guaranteed (class All).
func RandPowerLaw(r *rand.Rand, n int, alpha float64, labels []graph.Label) *graph.Graph {
	if alpha <= 1 {
		alpha = 2.5
	}
	g := graph.New(n)
	if n < 2 {
		return g
	}
	maxDeg := int(math.Sqrt(float64(n)))
	if maxDeg < 2 {
		maxDeg = 2
	}
	// Inverse-CDF sampling over the truncated power-law weights.
	weights := make([]float64, maxDeg+1)
	totalW := 0.0
	for d := 1; d <= maxDeg; d++ {
		weights[d] = math.Pow(float64(d), -alpha)
		totalW += weights[d]
	}
	var stubs []int
	for v := 0; v < n; v++ {
		x := r.Float64() * totalW
		d := maxDeg
		for c, acc := 1, 0.0; c <= maxDeg; c++ {
			acc += weights[c]
			if x < acc {
				d = c
				break
			}
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue // erase self-loops
		}
		if _, dup := g.HasEdge(graph.Vertex(u), graph.Vertex(v)); dup {
			continue // erase duplicate pairs
		}
		if _, dup := g.HasEdge(graph.Vertex(v), graph.Vertex(u)); dup {
			continue
		}
		if r.Intn(2) == 0 {
			u, v = v, u
		}
		g.MustAddEdge(graph.Vertex(u), graph.Vertex(v), RandLabel(r, labels))
	}
	return g
}

// QueryLadder returns a graded sequence of queries drawn from class c,
// one per size in [minSize, maxSize] — the rungs a workload climbs to
// probe how a dispatched algorithm scales with query size.
func QueryLadder(r *rand.Rand, c graph.Class, minSize, maxSize int, labels []graph.Label) []*graph.Graph {
	if minSize < 1 {
		minSize = 1
	}
	if maxSize < minSize {
		maxSize = minSize
	}
	out := make([]*graph.Graph, 0, maxSize-minSize+1)
	for s := minSize; s <= maxSize; s++ {
		out = append(out, RandInClass(r, c, s, labels))
	}
	return out
}

// ReachabilityUCQ returns the union of one-way-path queries of lengths
// 1…k over one label — "is there a path of at most k steps", the
// reachability query shape of the probabilistic-logic benchmark
// generators.
func ReachabilityUCQ(k int, label graph.Label) []*graph.Graph {
	if k < 1 {
		k = 1
	}
	out := make([]*graph.Graph, k)
	for l := 1; l <= k; l++ {
		labels := make([]graph.Label, l)
		for i := range labels {
			labels[i] = label
		}
		out[l-1] = graph.Path1WP(labels...)
	}
	return out
}

// RandWalkQuery returns a one-way-path query tracing a random directed
// walk of up to maxLen edges in g — a "needle" query guaranteed to have
// at least one match, with a match count governed by g's label
// diversity rather than by query size alone. Returns nil when g has no
// edges.
func RandWalkQuery(r *rand.Rand, g *graph.Graph, maxLen int) *graph.Graph {
	if g.NumEdges() == 0 || maxLen < 1 {
		return nil
	}
	e := g.Edge(r.Intn(g.NumEdges()))
	labels := []graph.Label{e.Label}
	v := e.To
	for len(labels) < maxLen {
		outs := g.OutEdges(v)
		if len(outs) == 0 {
			break
		}
		ei := outs[r.Intn(len(outs))]
		labels = append(labels, g.Edge(ei).Label)
		v = g.Edge(ei).To
	}
	return graph.Path1WP(labels...)
}
