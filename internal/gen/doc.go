// Package gen provides seeded, deterministic random generators for every
// graph class of the paper and for the counting-problem inputs
// (bipartite graphs, PP2DNF formulas). All generators take an explicit
// *rand.Rand so experiments and tests are reproducible.
package gen
