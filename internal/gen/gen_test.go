package gen

import (
	"math/rand"
	"testing"

	"phom/internal/graph"
)

// TestGeneratorsProduceClaimedClasses: every generator must emit graphs
// of the class it claims, across sizes and seeds.
func TestGeneratorsProduceClaimedClasses(t *testing.T) {
	labels := []graph.Label{"R", "S", "T"}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		for n := 1; n <= 12; n += 3 {
			if g := Rand1WP(r, n, labels); !g.Is1WP() {
				t.Fatalf("Rand1WP(%d) not 1WP: %v", n, g)
			}
			if g := Rand2WP(r, n, labels); !g.Is2WP() {
				t.Fatalf("Rand2WP(%d) not 2WP: %v", n, g)
			}
			if g := RandDWT(r, n, labels); !g.IsDWT() {
				t.Fatalf("RandDWT(%d) not DWT: %v", n, g)
			}
			if g := RandPolytree(r, n, labels); !g.IsPolytree() {
				t.Fatalf("RandPolytree(%d) not PT: %v", n, g)
			}
			if g := RandConnected(r, n, 2, labels); !g.IsConnected() {
				t.Fatalf("RandConnected(%d) not connected: %v", n, g)
			}
		}
	}
}

func TestRandInClassMembership(t *testing.T) {
	labels := []graph.Label{"R", "S"}
	for _, c := range graph.AllClasses {
		r := rand.New(rand.NewSource(int64(c)))
		for trial := 0; trial < 30; trial++ {
			g := RandInClass(r, c, 1+r.Intn(10), labels)
			if !g.InClass(c) {
				t.Fatalf("RandInClass(%v) produced a graph outside the class: %v", c, g)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := RandInClass(rand.New(rand.NewSource(42)), graph.ClassPT, 10, nil)
	b := RandInClass(rand.New(rand.NewSource(42)), graph.ClassPT, 10, nil)
	if a.String() != b.String() {
		t.Fatal("same seed must give the same graph")
	}
	pa := RandProb(rand.New(rand.NewSource(7)), a, 0.5)
	pb := RandProb(rand.New(rand.NewSource(7)), b, 0.5)
	if pa.String() != pb.String() {
		t.Fatal("same seed must give the same probabilities")
	}
}

func TestRandProbValid(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := RandInClass(r, graph.ClassAll, 8, nil)
		p := RandProb(r, g, 0.4)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandRatRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := RandRat(r)
		if x.Sign() < 0 || x.Cmp(graph.RatOne) > 0 {
			t.Fatalf("RandRat out of [0,1]: %s", x.RatString())
		}
	}
}

func TestRandBipartiteValid(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		bg := RandBipartite(r, 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(8))
		if err := bg.Validate(); err != nil {
			t.Fatal(err)
		}
		seen := map[[2]int]bool{}
		for _, e := range bg.Edges {
			if seen[e] {
				t.Fatalf("duplicate edge %v", e)
			}
			seen[e] = true
		}
	}
}

func TestRandPP2DNFCoversVariables(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := RandPP2DNF(r, 4, 5, 12)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	seenX := map[int]bool{}
	seenY := map[int]bool{}
	for _, c := range f.Clauses {
		seenX[c[0]] = true
		seenY[c[1]] = true
	}
	if len(seenX) != 4 || len(seenY) != 5 {
		t.Fatalf("variables not all covered: %d X, %d Y", len(seenX), len(seenY))
	}
}

func TestRandGradedDAGIsGraded(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		g := RandGradedDAG(r, 2+r.Intn(8), r.Intn(12), 2+r.Intn(3), nil)
		if !g.IsGradedDAG() {
			t.Fatalf("RandGradedDAG produced a non-graded graph: %v", g)
		}
	}
}

func TestRandUnionComponentCount(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	u := RandUnion(r, 3, func(r *rand.Rand) *graph.Graph { return Rand1WP(r, 3, nil) })
	if got := len(u.Components()); got != 3 {
		t.Fatalf("union has %d components, want 3", got)
	}
}
