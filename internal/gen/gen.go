package gen

import (
	"math/big"
	"math/rand"

	"phom/internal/counting"
	"phom/internal/graph"
)

// RandLabel picks a label uniformly. An empty label set yields the
// conventional unlabeled label.
func RandLabel(r *rand.Rand, labels []graph.Label) graph.Label {
	if len(labels) == 0 {
		return graph.Unlabeled
	}
	return labels[r.Intn(len(labels))]
}

// Rand1WP returns a random one-way path with n vertices.
func Rand1WP(r *rand.Rand, n int, labels []graph.Label) *graph.Graph {
	ls := make([]graph.Label, n-1)
	for i := range ls {
		ls[i] = RandLabel(r, labels)
	}
	return graph.Path1WP(ls...)
}

// Rand2WP returns a random two-way path with n vertices (each edge
// oriented by a fair coin).
func Rand2WP(r *rand.Rand, n int, labels []graph.Label) *graph.Graph {
	steps := make([]graph.Step, n-1)
	for i := range steps {
		steps[i] = graph.Step{Label: RandLabel(r, labels), Forward: r.Intn(2) == 0}
	}
	return graph.Path2WP(steps...)
}

// RandDWT returns a random downward tree with n vertices: vertex i > 0
// gets a uniformly random parent among 0 … i−1.
func RandDWT(r *rand.Rand, n int, labels []graph.Label) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.Vertex(r.Intn(i)), graph.Vertex(i), RandLabel(r, labels))
	}
	return g
}

// RandPolytree returns a random polytree with n vertices: a random tree
// with each edge oriented by a fair coin.
func RandPolytree(r *rand.Rand, n int, labels []graph.Label) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		p := graph.Vertex(r.Intn(i))
		if r.Intn(2) == 0 {
			g.MustAddEdge(p, graph.Vertex(i), RandLabel(r, labels))
		} else {
			g.MustAddEdge(graph.Vertex(i), p, RandLabel(r, labels))
		}
	}
	return g
}

// RandConnected returns a random connected graph with n vertices and
// approximately extra additional non-tree edges.
func RandConnected(r *rand.Rand, n, extra int, labels []graph.Label) *graph.Graph {
	g := RandPolytree(r, n, labels)
	for k := 0; k < extra; k++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if _, dup := g.HasEdge(u, v); dup {
			continue
		}
		g.MustAddEdge(u, v, RandLabel(r, labels))
	}
	return g
}

// RandGraph returns a random graph with n vertices and approximately m
// edges (no connectivity guarantee, self-loops excluded).
func RandGraph(r *rand.Rand, n, m int, labels []graph.Label) *graph.Graph {
	g := graph.New(n)
	for k := 0; k < m; k++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if _, dup := g.HasEdge(u, v); dup {
			continue
		}
		g.MustAddEdge(u, v, RandLabel(r, labels))
	}
	return g
}

// RandUnion returns a disjoint union of k graphs produced by part.
func RandUnion(r *rand.Rand, k int, part func(*rand.Rand) *graph.Graph) *graph.Graph {
	parts := make([]*graph.Graph, k)
	for i := range parts {
		parts[i] = part(r)
	}
	u, _ := graph.DisjointUnion(parts...)
	return u
}

// RandInClass returns a random graph of the given class with roughly n
// vertices (split across components for union classes).
func RandInClass(r *rand.Rand, c graph.Class, n int, labels []graph.Label) *graph.Graph {
	if n < 1 {
		n = 1
	}
	switch c {
	case graph.Class1WP:
		return Rand1WP(r, n, labels)
	case graph.Class2WP:
		return Rand2WP(r, n, labels)
	case graph.ClassDWT:
		return RandDWT(r, n, labels)
	case graph.ClassPT:
		return RandPolytree(r, n, labels)
	case graph.ClassConnected:
		return RandConnected(r, n, 1+n/4, labels)
	case graph.ClassAll:
		return RandGraph(r, n, n+n/2, labels)
	case graph.ClassU1WP, graph.ClassU2WP, graph.ClassUDWT, graph.ClassUPT:
		k := 1 + r.Intn(3)
		per := n / k
		if per < 1 {
			per = 1
		}
		return RandUnion(r, k, func(r *rand.Rand) *graph.Graph {
			return RandInClass(r, c.Base(), per, labels)
		})
	}
	panic("gen: unknown class")
}

// RandRat returns a random exact probability k/d with d ∈ {2, 4, 8} and
// 0 ≤ k ≤ d.
func RandRat(r *rand.Rand) *big.Rat {
	d := int64(2 << uint(r.Intn(3)))
	return big.NewRat(r.Int63n(d+1), d)
}

// RandProb wraps g with random probabilities: each edge is certain
// (probability 1) with probability certainFrac, and gets a random
// rational in [0, 1] otherwise.
func RandProb(r *rand.Rand, g *graph.Graph, certainFrac float64) *graph.ProbGraph {
	p := graph.NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		if r.Float64() >= certainFrac {
			if err := p.SetProb(i, RandRat(r)); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// RandBipartite returns a random bipartite graph with parts of size nx
// and ny and up to m distinct edges.
func RandBipartite(r *rand.Rand, nx, ny, m int) *counting.BipartiteGraph {
	g := &counting.BipartiteGraph{NX: nx, NY: ny}
	seen := map[[2]int]bool{}
	for k := 0; k < m; k++ {
		e := [2]int{r.Intn(nx), r.Intn(ny)}
		if !seen[e] {
			seen[e] = true
			g.Edges = append(g.Edges, e)
		}
	}
	return g
}

// RandPP2DNF returns a random PP2DNF with n1 + n2 variables and roughly
// m distinct clauses. Every variable occurs in some clause (Definition
// 4.3 assumes this, and the Proposition 5.1 reduction needs it for
// connectivity), so the result can have up to max(m, n1, n2) clauses and
// never more than n1·n2.
func RandPP2DNF(r *rand.Rand, n1, n2, m int) *counting.PP2DNF {
	if m > n1*n2 {
		m = n1 * n2 // only n1·n2 distinct clauses exist
	}
	f := &counting.PP2DNF{N1: n1, N2: n2}
	seen := map[[2]int]bool{}
	coveredY := map[int]bool{}
	add := func(c [2]int) {
		if !seen[c] {
			seen[c] = true
			coveredY[c[1]] = true
			f.Clauses = append(f.Clauses, c)
		}
	}
	for i := 0; i < n1; i++ {
		add([2]int{i, r.Intn(n2)})
	}
	for y := 0; y < n2; y++ {
		if !coveredY[y] {
			add([2]int{r.Intn(n1), y})
		}
	}
	for len(f.Clauses) < m {
		add([2]int{r.Intn(n1), r.Intn(n2)})
	}
	return f
}

// RandGradedDAG returns a random graded DAG: vertices are assigned random
// levels and every edge goes from a level-ℓ vertex to a level-(ℓ−1)
// vertex, so a level mapping exists by construction.
func RandGradedDAG(r *rand.Rand, n, m, levels int, labels []graph.Label) *graph.Graph {
	if levels < 2 {
		levels = 2
	}
	g := graph.New(n)
	lvl := make([]int, n)
	for i := range lvl {
		lvl[i] = r.Intn(levels)
	}
	for k := 0; k < m; k++ {
		u := r.Intn(n)
		v := r.Intn(n)
		if lvl[u] != lvl[v]+1 {
			continue
		}
		if _, dup := g.HasEdge(graph.Vertex(u), graph.Vertex(v)); dup {
			continue
		}
		g.MustAddEdge(graph.Vertex(u), graph.Vertex(v), RandLabel(r, labels))
	}
	return g
}
