package gen_test

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"phom"
	"phom/internal/gen"
	"phom/internal/graph"
)

// TestFamilyMembership: every workload family must emit graphs inside
// its claimed class, across seeds and sizes — the invariant phomgen's
// self-verification and E23 rely on.
func TestFamilyMembership(t *testing.T) {
	labels := []graph.Label{"R", "S"}
	for _, f := range gen.Families() {
		for seed := int64(0); seed < 10; seed++ {
			r := rand.New(rand.NewSource(seed))
			for n := 1; n <= 13; n += 4 {
				g := gen.RandFamily(r, f, n, labels)
				if !g.InClass(f.Class()) {
					t.Fatalf("family %v seed %d n=%d: graph not in claimed class %v:\n%v",
						f, seed, n, f.Class(), g)
				}
			}
		}
	}
}

// TestFamilyParseRoundTrip: String and ParseFamily are inverses.
func TestFamilyParseRoundTrip(t *testing.T) {
	for _, f := range gen.Families() {
		got, err := gen.ParseFamily(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFamily(%q) = %v, %v; want %v", f.String(), got, err, f)
		}
	}
	if _, err := gen.ParseFamily("nope"); err == nil {
		t.Fatal("ParseFamily accepted an unknown family")
	}
}

// TestRandomModelDeterminism: the ER/BA/power-law generators must be a
// pure function of the seed — the property every BENCH_*.json
// byte-identity guarantee is built on. A map-iteration anywhere in edge
// construction would flake this test under -shuffle.
func TestRandomModelDeterminism(t *testing.T) {
	labels := []graph.Label{"R", "S"}
	for _, f := range []gen.Family{gen.FamER, gen.FamBA, gen.FamPLaw} {
		for seed := int64(0); seed < 5; seed++ {
			a := gen.RandFamily(rand.New(rand.NewSource(seed)), f, 40, labels)
			b := gen.RandFamily(rand.New(rand.NewSource(seed)), f, 40, labels)
			if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
				t.Fatalf("family %v seed %d: two generations differ", f, seed)
			}
		}
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	labels := []graph.Label{"R"}
	// p = 1 must produce the complete directed graph; p = 0 the empty one.
	if g := gen.RandErdosRenyi(r, 9, 1, labels); g.NumEdges() != 9*8 {
		t.Fatalf("ER(9, p=1) has %d edges, want 72", g.NumEdges())
	}
	if g := gen.RandErdosRenyi(r, 9, 0, labels); g.NumEdges() != 0 {
		t.Fatalf("ER(9, p=0) has %d edges, want 0", g.NumEdges())
	}
	// At moderate p the edge count should track n(n-1)p (law of large
	// numbers over several draws; wide tolerance, this is not a
	// statistical test).
	total := 0
	for i := 0; i < 20; i++ {
		total += gen.RandErdosRenyi(r, 30, 0.1, labels).NumEdges()
	}
	mean := float64(total) / 20
	if want := 30 * 29 * 0.1; mean < want/2 || mean > want*2 {
		t.Fatalf("ER(30, p=0.1) mean edge count %.1f, want ≈ %.1f", mean, want)
	}
}

func TestQueryLadderAndUCQ(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ladder := gen.QueryLadder(r, graph.Class2WP, 2, 5, []graph.Label{"R", "S"})
	if len(ladder) != 4 {
		t.Fatalf("ladder has %d rungs, want 4", len(ladder))
	}
	for i, q := range ladder {
		if !q.InClass(graph.Class2WP) {
			t.Fatalf("rung %d left class 2WP", i)
		}
	}
	ucq := gen.ReachabilityUCQ(3, "R")
	if len(ucq) != 3 {
		t.Fatalf("UCQ has %d disjuncts, want 3", len(ucq))
	}
	for i, q := range ucq {
		if !q.Is1WP() || q.NumEdges() != i+1 {
			t.Fatalf("disjunct %d is not a 1WP path of length %d", i, i+1)
		}
	}
}

func TestRandWalkQueryHasMatch(t *testing.T) {
	labels := []graph.Label{"R", "S"}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := gen.RandFamily(r, gen.FamBA, 20, labels)
		for i := 0; i < 5; i++ {
			q := gen.RandWalkQuery(r, g, 1+i%3)
			if q == nil {
				t.Fatalf("seed %d: walk query is nil on a connected graph", seed)
			}
			if !q.Is1WP() {
				t.Fatalf("seed %d: walk query is not 1WP", seed)
			}
			if !graph.HasHomomorphism(q, g) {
				t.Fatalf("seed %d: walk query has no match in its own source graph", seed)
			}
		}
	}
	if q := gen.RandWalkQuery(rand.New(rand.NewSource(1)), graph.New(3), 2); q != nil {
		t.Fatal("walk query on an edgeless graph should be nil")
	}
}

// bruteWorlds evaluates Pr(G ⇝ H) for a UCQ by direct world
// enumeration over the uncertain edges — the reference the solver's
// plan-path results are differenced against. Independent of
// core.BruteForce (this test must not share code with the system under
// test).
func bruteWorlds(t *testing.T, qs []*graph.Graph, h *graph.ProbGraph) *big.Rat {
	t.Helper()
	unc := h.UncertainEdges()
	if len(unc) > 16 {
		t.Fatalf("bruteWorlds: %d uncertain edges is too many to enumerate", len(unc))
	}
	total := new(big.Rat)
	keep := make([]bool, h.G.NumEdges())
	for mask := 0; mask < 1<<len(unc); mask++ {
		// Certain edges (probability 1) are present in every world;
		// impossible edges (probability 0) in none — only the uncertain
		// ones are driven by the mask.
		for i := range keep {
			keep[i] = h.Prob(i).Cmp(graph.RatOne) == 0
		}
		for bi, ei := range unc {
			keep[ei] = mask&(1<<bi) != 0
		}
		world := h.G.SubgraphKeeping(keep)
		for _, q := range qs {
			if graph.HasHomomorphism(q, world) {
				total.Add(total, h.WorldProb(keep))
				break
			}
		}
	}
	return total
}

// TestDifferentialSolveMatchesBruteForce: for every generator family,
// the plan-path result of the public request API must byte-match direct
// world enumeration on small instances, for single queries drawn from
// every query-class ladder, walk-derived needle queries, and a
// reachability UCQ. This is the seeded differential corpus: the solver
// (dispatch, plans, fallbacks) against an implementation-independent
// reference.
func TestDifferentialSolveMatchesBruteForce(t *testing.T) {
	labels := []graph.Label{"R", "S"}
	ctx := context.Background()
	for _, f := range gen.Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			tested := 0
			for seed := int64(0); seed < 6 && tested < 3; seed++ {
				r := rand.New(rand.NewSource(seed))
				g := gen.RandFamily(r, f, 6, labels)
				h := gen.RandProb(r, g, 0.4)
				if len(h.UncertainEdges()) > 12 {
					continue // keep 2^k enumeration cheap
				}
				tested++

				queries := []*graph.Graph{
					gen.RandInClass(r, graph.Class1WP, 2, labels),
					gen.RandInClass(r, graph.Class2WP, 3, labels),
					gen.RandInClass(r, graph.ClassDWT, 3, labels),
					gen.RandInClass(r, graph.ClassPT, 4, labels),
				}
				if wq := gen.RandWalkQuery(r, g, 2); wq != nil {
					queries = append(queries, wq)
				}
				for qi, q := range queries {
					want := bruteWorlds(t, []*graph.Graph{q}, h)
					res, err := phom.SolveContext(ctx, phom.NewRequest(q, h))
					if err != nil {
						t.Fatalf("seed %d query %d: %v", seed, qi, err)
					}
					if res.Prob.Cmp(want) != 0 {
						t.Fatalf("seed %d query %d: solver %s, brute force %s (method %v)",
							seed, qi, res.Prob.RatString(), want.RatString(), res.Method)
					}
				}

				ucq := gen.ReachabilityUCQ(2, "R")
				want := bruteWorlds(t, ucq, h)
				res, err := phom.SolveContext(ctx, phom.NewUCQRequest(ucq, h))
				if err != nil {
					t.Fatalf("seed %d UCQ: %v", seed, err)
				}
				if res.Prob.Cmp(want) != 0 {
					t.Fatalf("seed %d UCQ: solver %s, brute force %s",
						seed, res.Prob.RatString(), want.RatString())
				}
			}
			if tested == 0 {
				t.Fatalf("no instance of family %v was small enough to difference", f)
			}
		})
	}
}
