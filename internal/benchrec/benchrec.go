// Package benchrec persists experiment measurements as machine-readable
// BENCH_<experiment>.json records, so the performance trajectory of the
// repository is diffable across PRs instead of living only in
// phombench's human-readable tables.
//
// The schema separates stable fields from volatile ones. Stable fields
// (experiment id, seed, workload params, metric names, outcome values,
// counters) must be a pure function of the seed and flags: two runs of
// the same binary with the same seed produce byte-identical records
// after Normalize. Volatile fields (timestamp, go version, elapsed_us,
// ops_per_sec, speedup) carry the actual measurements and are the only
// fields Normalize clears — a golden-file test over a normalized record
// therefore catches schema drift without flaking on timings.
package benchrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it on any
// field change and update the golden file in the same commit — the
// comparator refuses to diff records of different versions.
const SchemaVersion = 1

// Run is one experiment's persisted record.
type Run struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Title         string `json:"title"`
	// Seed and Params are the workload coordinates: the record of what
	// was measured, stable across runs with the same flags.
	Seed   int64             `json:"seed"`
	Params map[string]string `json:"params,omitempty"`
	// GoVersion and Timestamp are provenance, volatile by nature.
	GoVersion string   `json:"go_version"`
	Timestamp string   `json:"timestamp"` // RFC 3339
	Metrics   []Metric `json:"metrics"`
}

// Metric is one measured line of an experiment.
type Metric struct {
	// Name identifies the measurement within the experiment
	// ("2WP (Prop 4.11) n=1024 eval x64"); stable.
	Name string `json:"name"`
	// Value is the stable outcome — correctness assertions and
	// deterministic counts ("match=true plan_hits=64/64"). Never put a
	// timing-derived quantity here; that is what the volatile fields
	// are for.
	Value string `json:"value,omitempty"`
	// Counters hold stable named counts (cache hits, fallbacks,
	// instance sizes) that diffing should track numerically.
	Counters map[string]int64 `json:"counters,omitempty"`
	// ElapsedUS, OpsPerSec and Speedup are the volatile measurements.
	ElapsedUS int64   `json:"elapsed_us"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

// FileName returns the canonical file name for an experiment's record.
func FileName(experiment string) string {
	return "BENCH_" + experiment + ".json"
}

// Normalize clears the volatile fields of r in place (timestamp, go
// version, and every metric's elapsed/ops/speedup), leaving exactly the
// fields that must be byte-identical across two seeded runs.
func Normalize(r *Run) {
	r.GoVersion = ""
	r.Timestamp = ""
	for i := range r.Metrics {
		r.Metrics[i].ElapsedUS = 0
		r.Metrics[i].OpsPerSec = 0
		r.Metrics[i].Speedup = 0
	}
}

// Encode writes r as indented JSON with a trailing newline — the exact
// bytes of a BENCH_*.json file.
func Encode(w io.Writer, r *Run) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads a record, rejecting unknown fields so that readers and
// writers cannot drift silently.
func Decode(rd io.Reader) (*Run, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Run
	if err := dec.Decode(&r); err != nil {
		return nil, err
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchrec: schema version %d, this binary reads %d", r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Load reads one BENCH_*.json file.
func Load(path string) (*Run, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Decode(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Recorder accumulates runs for many experiments during one phombench
// invocation and writes one file per experiment.
type Recorder struct {
	seed   int64
	params map[string]string
	runs   map[string]*Run
	order  []string
}

// NewRecorder returns a recorder stamping every run with the given seed
// and workload params.
func NewRecorder(seed int64, params map[string]string) *Recorder {
	return &Recorder{seed: seed, params: params, runs: map[string]*Run{}}
}

// Begin opens the record for an experiment; metrics added for that
// experiment land in it. Calling Begin twice for the same id keeps the
// first record.
func (rc *Recorder) Begin(experiment, title string) {
	if _, ok := rc.runs[experiment]; ok {
		return
	}
	rc.runs[experiment] = &Run{
		SchemaVersion: SchemaVersion,
		Experiment:    experiment,
		Title:         title,
		Seed:          rc.seed,
		Params:        rc.params,
		GoVersion:     runtime.Version(),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
	rc.order = append(rc.order, experiment)
}

// Add appends a metric to an experiment's record; the experiment must
// have been opened with Begin.
func (rc *Recorder) Add(experiment string, m Metric) {
	run, ok := rc.runs[experiment]
	if !ok {
		panic("benchrec: Add before Begin for " + experiment)
	}
	run.Metrics = append(run.Metrics, m)
}

// Runs returns the accumulated records in Begin order.
func (rc *Recorder) Runs() []*Run {
	out := make([]*Run, 0, len(rc.order))
	for _, id := range rc.order {
		out = append(out, rc.runs[id])
	}
	return out
}

// WriteDir writes one BENCH_<experiment>.json per recorded experiment
// into dir (created if missing) and returns the paths written.
func (rc *Recorder) WriteDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, run := range rc.Runs() {
		path := filepath.Join(dir, FileName(run.Experiment))
		var buf bytes.Buffer
		if err := Encode(&buf, run); err != nil {
			return paths, err
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Delta is one per-metric difference between two records.
type Delta struct {
	Name string
	// Kind is "value", "counter", "timing", "only-in-a" or "only-in-b".
	Kind string
	A, B string
}

// Diff compares two records metric by metric (matched by Name):
// stable-value and counter changes, relative timing deltas, and
// metrics present on only one side. Diffing records of different
// schema versions is refused by Load/Decode before this is reached.
func Diff(a, b *Run) []Delta {
	var out []Delta
	bByName := map[string]Metric{}
	for _, m := range b.Metrics {
		bByName[m.Name] = m
	}
	aSeen := map[string]bool{}
	for _, ma := range a.Metrics {
		aSeen[ma.Name] = true
		mb, ok := bByName[ma.Name]
		if !ok {
			out = append(out, Delta{Name: ma.Name, Kind: "only-in-a"})
			continue
		}
		if ma.Value != mb.Value {
			out = append(out, Delta{Name: ma.Name, Kind: "value", A: ma.Value, B: mb.Value})
		}
		keys := map[string]bool{}
		for k := range ma.Counters {
			keys[k] = true
		}
		for k := range mb.Counters {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			if ma.Counters[k] != mb.Counters[k] {
				out = append(out, Delta{
					Name: ma.Name, Kind: "counter",
					A: fmt.Sprintf("%s=%d", k, ma.Counters[k]),
					B: fmt.Sprintf("%s=%d", k, mb.Counters[k]),
				})
			}
		}
		if ma.ElapsedUS > 0 && mb.ElapsedUS > 0 {
			ratio := float64(mb.ElapsedUS) / float64(ma.ElapsedUS)
			out = append(out, Delta{
				Name: ma.Name, Kind: "timing",
				A: fmt.Sprintf("%dus", ma.ElapsedUS),
				B: fmt.Sprintf("%dus (×%.2f)", mb.ElapsedUS, ratio),
			})
		}
	}
	for _, mb := range b.Metrics {
		if !aSeen[mb.Name] {
			out = append(out, Delta{Name: mb.Name, Kind: "only-in-b"})
		}
	}
	return out
}

// FormatDiff renders Diff(a, b) as an aligned human-readable report.
func FormatDiff(w io.Writer, a, b *Run) error {
	if _, err := fmt.Fprintf(w, "%s: %s → %s\n", a.Experiment, a.Timestamp, b.Timestamp); err != nil {
		return err
	}
	deltas := Diff(a, b)
	if len(deltas) == 0 {
		_, err := fmt.Fprintln(w, "  no differences")
		return err
	}
	for _, d := range deltas {
		var err error
		switch d.Kind {
		case "only-in-a", "only-in-b":
			_, err = fmt.Fprintf(w, "  %-10s %s\n", d.Kind, d.Name)
		default:
			_, err = fmt.Fprintf(w, "  %-10s %-40s %s → %s\n", d.Kind, d.Name, d.A, d.B)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
