package benchrec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/bench.golden from the current schema")

// goldenRun builds the fixed record the golden file pins down. Any
// schema change (field added, renamed, retyped, reordered) changes its
// encoding and fails TestGoldenSchema — bump SchemaVersion and
// regenerate with -update in the same commit.
func goldenRun() *Run {
	rec := NewRecorder(7, map[string]string{"maxn": "512", "reweights": "16"})
	rec.Begin("E99", "golden schema fixture")
	rec.Add("E99", Metric{
		Name:      "fixture n=512 eval x16",
		Value:     "match=true",
		Counters:  map[string]int64{"plan_hits": 16, "fallbacks": 0},
		ElapsedUS: 1234,
		OpsPerSec: 12967.4,
		Speedup:   41.3,
	})
	rec.Add("E99", Metric{
		Name:  "fixture n=512 compile",
		Value: "1 compilation",
	})
	return rec.Runs()[0]
}

func TestGoldenSchema(t *testing.T) {
	run := goldenRun()
	Normalize(run)
	var buf bytes.Buffer
	if err := Encode(&buf, run); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "bench.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/benchrec -update` after an intentional schema change)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("BENCH JSON schema drifted from testdata/bench.golden:\n--- golden\n%s\n--- got\n%s\n"+
			"If the change is intentional, bump SchemaVersion and regenerate with -update.",
			want, buf.Bytes())
	}
	// The golden bytes must round-trip through the strict decoder: this
	// is what catches a reader/writer drift (an unknown field in one
	// direction, a version bump without a golden refresh in the other).
	decoded, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden file does not decode: %v", err)
	}
	if decoded.Experiment != "E99" || len(decoded.Metrics) != 2 {
		t.Fatalf("golden decoded to unexpected content: %+v", decoded)
	}
}

func TestNormalizeClearsOnlyVolatileFields(t *testing.T) {
	run := goldenRun()
	if run.GoVersion == "" || run.Timestamp == "" {
		t.Fatal("recorder did not stamp provenance")
	}
	Normalize(run)
	if run.GoVersion != "" || run.Timestamp != "" {
		t.Error("Normalize left provenance fields")
	}
	m := run.Metrics[0]
	if m.ElapsedUS != 0 || m.OpsPerSec != 0 || m.Speedup != 0 {
		t.Error("Normalize left timing fields")
	}
	if m.Name == "" || m.Value == "" || m.Counters["plan_hits"] != 16 {
		t.Error("Normalize touched stable fields")
	}
}

func TestDecodeRejectsDriftAndVersionSkew(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema_version": 1, "experiment": "E1", "surprise": true}`)); err == nil {
		t.Error("Decode accepted an unknown field")
	}
	if _, err := Decode(strings.NewReader(`{"schema_version": 999, "experiment": "E1"}`)); err == nil {
		t.Error("Decode accepted a future schema version")
	}
}

func TestDiff(t *testing.T) {
	a := goldenRun()
	b := goldenRun()
	b.Metrics[0].Value = "match=false"
	b.Metrics[0].Counters["plan_hits"] = 12
	b.Metrics[0].ElapsedUS = 2468
	b.Metrics = append(b.Metrics, Metric{Name: "extra"})
	deltas := Diff(a, b)
	kinds := map[string]int{}
	for _, d := range deltas {
		kinds[d.Kind]++
	}
	if kinds["value"] != 1 || kinds["counter"] != 1 || kinds["timing"] != 1 || kinds["only-in-b"] != 1 {
		t.Fatalf("unexpected delta kinds: %v (deltas %+v)", kinds, deltas)
	}
	if ds := Diff(a, goldenRun()); len(ds) != 1 || ds[0].Kind != "timing" {
		// Two identical-seed runs differ only in timing.
		t.Fatalf("self-diff: %+v", ds)
	}
	var out bytes.Buffer
	if err := FormatDiff(&out, a, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"value", "counter", "only-in-b", "plan_hits=16", "plan_hits=12"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("FormatDiff output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRecorderWriteDir(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(1, nil)
	rec.Begin("E20", "first")
	rec.Begin("E21", "second")
	rec.Add("E20", Metric{Name: "m"})
	paths, err := rec.WriteDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "BENCH_E20.json" || filepath.Base(paths[1]) != "BENCH_E21.json" {
		t.Fatalf("paths: %v", paths)
	}
	run, err := Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if run.Experiment != "E20" || len(run.Metrics) != 1 {
		t.Fatalf("loaded run: %+v", run)
	}
}
