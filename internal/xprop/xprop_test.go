package xprop

import (
	"math/rand"
	"testing"

	"phom/internal/gen"
	"phom/internal/graph"
)

func TestSubpathsHaveXProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	labels := []graph.Label{"R", "S"}
	for trial := 0; trial < 100; trial++ {
		h := gen.Rand2WP(r, 2+r.Intn(8), labels)
		if !HasXProperty(h, IdentityOrder(h.NumVertices())) {
			t.Fatalf("2WP lacks the X-property: %v", h)
		}
	}
}

func TestXPropertyViolated(t *testing.T) {
	// n0 → n3 and n1 → n2 with n0 < n1, n2 < n3, but no n0 → n2.
	h := graph.New(4)
	h.MustAddEdge(0, 3, "R")
	h.MustAddEdge(1, 2, "R")
	if HasXProperty(h, IdentityOrder(4)) {
		t.Fatal("crossing edges without the completion edge should violate the X-property")
	}
	h.MustAddEdge(0, 2, "R")
	if !HasXProperty(h, IdentityOrder(4)) {
		t.Fatal("completion edge added: X-property should hold")
	}
}

func TestXPropertyLabelSensitive(t *testing.T) {
	// The completion edge exists but with the wrong label.
	h := graph.New(4)
	h.MustAddEdge(0, 3, "R")
	h.MustAddEdge(1, 2, "R")
	h.MustAddEdge(0, 2, "S")
	if HasXProperty(h, IdentityOrder(4)) {
		t.Fatal("completion edge with wrong label must not satisfy the X-property")
	}
}

// TestHomomorphismMatchesOracle: on 2WP instances (which always have the
// X-property), the AC algorithm must agree with backtracking search, for
// random connected queries.
func TestHomomorphismMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	labels := []graph.Label{"R", "S"}
	for trial := 0; trial < 500; trial++ {
		q := gen.RandInClass(r, graph.ClassConnected, 1+r.Intn(5), labels)
		h := gen.Rand2WP(r, 1+r.Intn(8), labels)
		got := HasHomomorphism(q, h, IdentityOrder(h.NumVertices()))
		want := graph.HasHomomorphism(q, h)
		if got != want {
			t.Fatalf("AC disagreement: got %v, want %v\nq=%v\nh=%v", got, want, q, h)
		}
	}
}

// TestHomomorphismUnlabeled2WP: the unlabeled case of Gutjahr et al.
func TestHomomorphismUnlabeled2WP(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		q := gen.RandInClass(r, graph.Class2WP, 1+r.Intn(6), nil)
		h := gen.Rand2WP(r, 1+r.Intn(8), nil)
		got := HasHomomorphism(q, h, IdentityOrder(h.NumVertices()))
		want := graph.HasHomomorphism(q, h)
		if got != want {
			t.Fatalf("AC disagreement (unlabeled): got %v, want %v\nq=%v\nh=%v", got, want, q, h)
		}
	}
}

func TestHomomorphismTrivialCases(t *testing.T) {
	h := graph.Path1WP("R")
	if !HasHomomorphism(graph.New(1), h, IdentityOrder(2)) {
		t.Fatal("single query vertex should map")
	}
	q := graph.Path1WP("R", "R")
	if HasHomomorphism(q, h, IdentityOrder(2)) {
		t.Fatal("RR path must not map into a single R edge")
	}
}
