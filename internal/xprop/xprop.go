package xprop

import (
	"phom/internal/graph"
)

// HasXProperty reports whether instance H has the X-property w.r.t. the
// order of vertices given by pos (pos[v] = rank of v): for every label R
// and vertices n0 < n1, n2 < n3, if n0 −R→ n3 and n1 −R→ n2 are edges then
// n0 −R→ n2 is an edge. Used to validate applicability; the check is
// O(|E|²).
func HasXProperty(h *graph.Graph, pos []int) bool {
	edges := h.Edges()
	for _, e1 := range edges {
		for _, e2 := range edges {
			if e1.Label != e2.Label {
				continue
			}
			// e1 = n0 → n3, e2 = n1 → n2 with n0 < n1 and n2 < n3.
			if pos[e1.From] < pos[e2.From] && pos[e2.To] < pos[e1.To] {
				if l, ok := h.HasEdge(e1.From, e2.To); !ok || l != e1.Label {
					return false
				}
			}
		}
	}
	return true
}

// HasHomomorphism decides G ⇝ H for an instance H that has the X-property
// w.r.t. the vertex order pos, in time O(|G|·|H|·iterations) via arc
// consistency followed by the minimum assignment. The result is sound and
// complete only when the X-property holds; callers should validate with
// HasXProperty (tests do) or rely on structural guarantees (subpaths of a
// 2WP trivially have the X-property, §4.2).
func HasHomomorphism(g, h *graph.Graph, pos []int) bool {
	if g.NumVertices() == 0 {
		return true
	}
	if h.NumVertices() == 0 {
		return false
	}
	// dom[v][w] = instance vertex w is still a candidate image for query
	// vertex v.
	n, m := g.NumVertices(), h.NumVertices()
	dom := make([][]bool, n)
	size := make([]int, n)
	for v := range dom {
		dom[v] = make([]bool, m)
		for w := range dom[v] {
			dom[v][w] = true
		}
		size[v] = m
	}
	// Arc consistency: repeat until fixpoint. For every query edge
	// (u, v, R): u's domain keeps w iff some w' in v's domain has
	// w −R→ w'; symmetrically for v.
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges() {
			// Revise dom[e.From] against dom[e.To].
			for w := 0; w < m; w++ {
				if !dom[e.From][w] {
					continue
				}
				ok := false
				for _, ei := range h.OutEdges(graph.Vertex(w)) {
					he := h.Edge(ei)
					if he.Label == e.Label && dom[e.To][he.To] {
						ok = true
						break
					}
				}
				if !ok {
					dom[e.From][w] = false
					size[e.From]--
					changed = true
				}
			}
			if size[e.From] == 0 {
				return false
			}
			// Revise dom[e.To] against dom[e.From].
			for w := 0; w < m; w++ {
				if !dom[e.To][w] {
					continue
				}
				ok := false
				for _, ei := range h.InEdges(graph.Vertex(w)) {
					he := h.Edge(ei)
					if he.Label == e.Label && dom[e.From][he.From] {
						ok = true
						break
					}
				}
				if !ok {
					dom[e.To][w] = false
					size[e.To]--
					changed = true
				}
			}
			if size[e.To] == 0 {
				return false
			}
		}
	}
	// Minimum assignment: map each query vertex to the <-minimum of its
	// domain. For min-closed (X-property) instances this is a
	// homomorphism; verify defensively.
	hmap := make(graph.Homomorphism, n)
	for v := 0; v < n; v++ {
		best := -1
		for w := 0; w < m; w++ {
			if dom[v][w] && (best < 0 || pos[w] < pos[best]) {
				best = w
			}
		}
		hmap[v] = graph.Vertex(best)
	}
	return graph.IsHomomorphism(g, h, hmap)
}

// IdentityOrder returns pos with pos[v] = v, the natural order used for
// subpaths a_i < a_{i+1} < … of a 2WP instance.
func IdentityOrder(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	return pos
}
