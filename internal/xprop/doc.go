// Package xprop implements the X-property of Gutjahr, Welzl and Woeginger
// [25] in the labeled formulation of Gottlob, Koch and Schulz [23]
// (Definition 4.12 of the paper), and the polynomial-time homomorphism
// test of Theorem 4.13 for instances that have the X-property with
// respect to a total order of their vertices.
//
// The algorithm is the classical one for min-closed constraint languages:
// for each label R, the X-property states exactly that the edge relation
// of R is min-closed w.r.t. the order, so establishing arc consistency and
// then mapping every query vertex to the minimum of its domain yields a
// homomorphism whenever one exists.
package xprop
