// Package replay fires seeded traffic mixes at a phomserve endpoint and
// accounts for every response: the load-generation half of the phomgen
// workload suite. A replay run builds a deterministic corpus from a
// generator family (instances, walk-derived needle queries, reweight
// maps, live-instance delta streams, deliberately malformed and
// intractable requests), fires it at
// the configured solve/reweight/batch/stream/delta ratios, and reports
// latency, throughput, per-status counts, and — the hard requirement —
// whether any response fell outside the server's typed error taxonomy
// or any streamed NDJSON line went missing.
package replay

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/graphio"
)

// TaxonomyStatuses is the closed set of HTTP statuses phomserve's typed
// error taxonomy maps onto (plus success): any other status on a replay
// response is unaccounted and fails the run.
var TaxonomyStatuses = map[int]bool{
	http.StatusOK:                  true, // 200
	http.StatusBadRequest:          true, // 400 bad-input
	http.StatusNotFound:            true, // 404 no such instance
	http.StatusRequestTimeout:      true, // 408 deadline
	http.StatusConflict:            true, // 409 stale if_version CAS
	http.StatusUnprocessableEntity: true, // 422 limit / intractable
	499:                            true, // client closed request (canceled)
	http.StatusServiceUnavailable:  true, // 503 unavailable
}

// Mix holds the relative weights of the request kinds in a replay run.
// Zero-weight kinds are not fired. ReweightBatch requests carry
// BatchSize probability vectors in one multi-vector /reweight call
// (the probs_batch wire form the engine routes through its vectorized
// kernel). Bad requests are syntactically malformed (expect 400); Hard
// requests pair a needle query with disable_fallback on a #P-hard cell
// (expect 422). Delta requests drive the live-instance surface: a run
// with Delta > 0 creates a small set of named instances up front, then
// interleaves delta batches, deliberately stale if_version batches
// (expect 409), instance-scoped solves and reweights, and fresh
// creates against them.
type Mix struct {
	Solve         int `json:"solve"`
	Reweight      int `json:"reweight"`
	ReweightBatch int `json:"reweight_batch"`
	Batch         int `json:"batch"`
	Stream        int `json:"stream"`
	Bad           int `json:"bad"`
	Hard          int `json:"hard"`
	Delta         int `json:"delta"`
}

// DefaultMix is the balanced production shape: mostly probability
// updates over known structures, some fresh solves, a trickle of
// batches, streams and malformed traffic.
var DefaultMix = Mix{Solve: 4, Reweight: 8, Batch: 1, Stream: 1, Bad: 1, Hard: 1}

// ReweightHeavyMix is the "reweight-heavy" preset: a probability-sweep
// serving profile dominated by multi-vector reweights with a floor of
// single reweights and solves, exercising the engine's batched kernel
// path end to end.
var ReweightHeavyMix = Mix{Solve: 2, Reweight: 4, ReweightBatch: 8, Stream: 1, Bad: 1}

// DeltaMix is the "delta" preset: a live-instance serving profile
// dominated by instance mutations and instance-scoped evaluation, with
// a floor of stateless traffic.
var DeltaMix = Mix{Solve: 2, Reweight: 2, Delta: 8, Bad: 1}

// ParseMix parses "solve:4,reweight:8,stream:1" command-line syntax.
// The named presets "default" and "reweight-heavy" are also accepted.
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	switch strings.TrimSpace(s) {
	case "", "default":
		return DefaultMix, nil
	case "reweight-heavy":
		return ReweightHeavyMix, nil
	case "delta":
		return DeltaMix, nil
	}
	for _, part := range strings.Split(s, ",") {
		kind, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return m, fmt.Errorf("replay: bad mix entry %q: want kind:weight or a preset name", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("replay: bad mix weight %q", val)
		}
		switch kind {
		case "solve":
			m.Solve = w
		case "reweight":
			m.Reweight = w
		case "reweight_batch":
			m.ReweightBatch = w
		case "batch":
			m.Batch = w
		case "stream":
			m.Stream = w
		case "bad":
			m.Bad = w
		case "hard":
			m.Hard = w
		case "delta":
			m.Delta = w
		default:
			return m, fmt.Errorf("replay: unknown mix kind %q", kind)
		}
	}
	if m.Solve+m.Reweight+m.ReweightBatch+m.Batch+m.Stream+m.Bad+m.Hard+m.Delta == 0 {
		return m, fmt.Errorf("replay: mix has zero total weight")
	}
	return m, nil
}

// Options configures a replay run.
type Options struct {
	// BaseURL is the phomserve endpoint ("http://host:8080").
	BaseURL string
	// Targets, when non-empty, replaces BaseURL with a list of
	// endpoints; requests round-robin across them by request index.
	// This is how a replay drives a phomgate tier (one target: the
	// gate) or compares replicas side by side (several targets), with
	// the same total accounting either way — a gate-shed 503 is a
	// taxonomy status like any other, never a dropped request.
	Targets []string
	// Requests is the total number of HTTP requests to fire.
	Requests int
	// Concurrency is the number of in-flight requests (default 4).
	Concurrency int
	// Seed makes the corpus and the kind sequence reproducible.
	Seed int64
	// Mix sets the traffic ratios (zero value means DefaultMix).
	Mix Mix
	// Family and N shape the generated instance (default FamER, 64).
	Family gen.Family
	N      int
	// BatchSize is the number of jobs per batch/stream request and of
	// probability vectors per reweight_batch request (default 4).
	BatchSize int
	// Precision, when non-empty, is sent as options.precision on every
	// well-formed job ("exact", "fast", "auto").
	Precision string
	// JobTimeout is sent as options.timeout_ms on every well-formed
	// job (default 5s, negative disables). Random-model corpora land in
	// #P-hard cells, and some seeded needle queries are pathologically
	// expensive — a load generator must bound every request it fires,
	// and a budget overrun is an accounted 408, not a hung run.
	JobTimeout time.Duration
	// Client overrides the HTTP client (tests inject the httptest
	// server's); nil uses a fresh client without timeouts.
	Client *http.Client
}

// Report is the accounting of one replay run. Every fired request is
// counted in exactly one ByStatus bucket (transport failures count
// under status 0 and are unaccounted); a run is clean iff
// Unaccounted() == 0.
type Report struct {
	Requests int            `json:"requests"`
	ByKind   map[string]int `json:"by_kind"`
	ByStatus map[int]int    `json:"by_status"`
	// ByTarget counts fired requests per target endpoint (only present
	// on multi-target runs).
	ByTarget map[string]int `json:"by_target,omitempty"`
	// OffTaxonomy counts responses whose status is outside
	// TaxonomyStatuses, transport failures included.
	OffTaxonomy int `json:"off_taxonomy"`
	// BodyErrors counts responses whose body violated the wire
	// contract: undecodable JSON, a batch with the wrong result count,
	// a stream with missing lines or no trailer, or a request-id echo
	// mismatch.
	BodyErrors int `json:"body_errors"`
	// StreamJobs/StreamLines/StreamTrailers account for NDJSON
	// streaming: every submitted stream job must come back as exactly
	// one indexed line, and every stream must end in a done trailer.
	StreamJobs     int `json:"stream_jobs"`
	StreamLines    int `json:"stream_lines"`
	StreamTrailers int `json:"stream_trailers"`
	// Latency percentiles over all requests, and the run wall clock.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	// Failures holds the first few anomalies verbatim, for diagnosis.
	Failures []string `json:"failures,omitempty"`
}

// Unaccounted returns the number of responses the run cannot vouch
// for: off-taxonomy statuses plus wire-contract violations.
func (rep *Report) Unaccounted() int { return rep.OffTaxonomy + rep.BodyErrors }

// Throughput returns requests per second over the run's wall clock.
func (rep *Report) Throughput() float64 {
	if rep.Elapsed <= 0 {
		return 0
	}
	return float64(rep.Requests) / rep.Elapsed.Seconds()
}

// request is one prebuilt HTTP request spec: corpus generation is fully
// deterministic under the seed, only the firing order and interleaving
// vary with scheduling.
type request struct {
	kind   string
	path   string // "/solve", "/reweight", "/batch", "/instances/...", ...
	body   []byte
	jobs   int  // batch/stream job count, for line accounting
	stream bool // parse NDJSON instead of a JSON object
	plain  bool // response is a plain JSON object, not a solve result
}

// wire mirrors of phomserve's request/response JSON (kept local: replay
// is a client and must speak the wire format, not link the server).
type wireOptions struct {
	DisableFallback bool   `json:"disable_fallback,omitempty"`
	MatchLimit      int    `json:"match_limit,omitempty"`
	Precision       string `json:"precision,omitempty"`
	TimeoutMS       int64  `json:"timeout_ms,omitempty"`
}

type wireJob struct {
	QueryText    string              `json:"query_text,omitempty"`
	InstanceText string              `json:"instance_text,omitempty"`
	Probs        map[string]string   `json:"probs,omitempty"`
	ProbsBatch   []map[string]string `json:"probs_batch,omitempty"`
	Options      *wireOptions        `json:"options,omitempty"`
}

type wireBatch struct {
	Jobs []wireJob `json:"jobs"`
}

type wireDeltaOp struct {
	Op   string `json:"op"`
	Edge string `json:"edge"`
	Prob string `json:"prob,omitempty"`
}

type wireDeltaRequest struct {
	IfVersion *int64        `json:"if_version,omitempty"`
	Deltas    []wireDeltaOp `json:"deltas"`
}

type wireCreateInstance struct {
	ID           string `json:"id,omitempty"`
	InstanceText string `json:"instance_text,omitempty"`
}

type wireResult struct {
	Prob  string `json:"prob"`
	Code  string `json:"code"`
	Error string `json:"error"`
}

type wireBatchResponse struct {
	Results []wireResult `json:"results"`
}

type wireStreamLine struct {
	Index *int  `json:"index"`
	Done  *bool `json:"done"`
}

// Corpus is the deterministic request material of a run, exported so
// cmd/phomgen can also print it without firing.
type Corpus struct {
	Instance *graph.ProbGraph
	Queries  []*graph.Graph
}

// BuildCorpus generates the instance and needle queries for a family.
func BuildCorpus(r *rand.Rand, family gen.Family, n int) (*Corpus, error) {
	labels := []graph.Label{"R", "S"}
	g := gen.RandFamily(r, family, n, labels)
	if !g.InClass(family.Class()) {
		return nil, fmt.Errorf("replay: %v generator left its claimed class %v", family, family.Class())
	}
	h := gen.RandProb(r, g, 0.5)
	var queries []*graph.Graph
	for i := 0; i < 4; i++ {
		if q := gen.RandWalkQuery(r, g, 1+i%3); q != nil {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		queries = append(queries, graph.Path1WP("R"))
	}
	return &Corpus{Instance: h, Queries: queries}, nil
}

func graphText(g *graph.Graph) string {
	var buf bytes.Buffer
	_ = graphio.WriteGraph(&buf, g)
	return buf.String()
}

func probGraphText(p *graph.ProbGraph) string {
	var buf bytes.Buffer
	_ = graphio.WriteProbGraph(&buf, p)
	return buf.String()
}

// deltaInstanceIDs names the pre-created live instances a delta-mix
// run mutates. Ids are seed-scoped so parallel runs against one server
// do not collide.
func deltaInstanceIDs(seed int64) []string {
	ids := make([]string, 3)
	for k := range ids {
		ids[k] = fmt.Sprintf("replay-%d-%d", seed, k)
	}
	return ids
}

// staleVersion is an if_version no live instance ever reaches in a
// replay run: CAS batches carrying it are the mix's deliberate 409s.
const staleVersion = int64(1 << 40)

// buildRequests pregenerates the full request sequence.
func buildRequests(r *rand.Rand, opts Options, corpus *Corpus) ([]request, error) {
	instText := probGraphText(corpus.Instance)
	wopts := &wireOptions{MatchLimit: 4096, TimeoutMS: jobTimeoutMS(opts.JobTimeout)}
	if opts.Precision != "" {
		wopts.Precision = opts.Precision
	}
	queryText := func() string { return graphText(corpus.Queries[r.Intn(len(corpus.Queries))]) }
	solveBody := func() wireJob {
		return wireJob{QueryText: queryText(), InstanceText: instText, Options: wopts}
	}
	probsVec := func() map[string]string {
		vec := map[string]string{}
		edges := corpus.Instance.G.Edges()
		for i := 0; i < 3 && len(edges) > 0; i++ {
			e := edges[r.Intn(len(edges))]
			key := fmt.Sprintf("%d>%d", e.From, e.To)
			vec[key] = fmt.Sprintf("%d/16", r.Intn(17))
		}
		return vec
	}
	reweightBody := func() wireJob {
		job := solveBody()
		job.Probs = probsVec()
		return job
	}
	deltaIDs := deltaInstanceIDs(opts.Seed)
	randEdgeKey := func() string {
		edges := corpus.Instance.G.Edges()
		if len(edges) == 0 {
			return "0>1"
		}
		e := edges[r.Intn(len(edges))]
		return fmt.Sprintf("%d>%d", e.From, e.To)
	}
	kinds := weightedKinds(opts.Mix)
	if len(kinds) == 0 {
		return nil, fmt.Errorf("replay: mix has zero total weight")
	}
	batchSize := opts.BatchSize
	if batchSize < 1 {
		batchSize = 4
	}
	reqs := make([]request, 0, opts.Requests)
	for i := 0; i < opts.Requests; i++ {
		kind := kinds[r.Intn(len(kinds))]
		var rq request
		switch kind {
		case "solve":
			b, _ := json.Marshal(solveBody())
			rq = request{kind: kind, path: "/solve", body: b}
		case "reweight":
			b, _ := json.Marshal(reweightBody())
			rq = request{kind: kind, path: "/reweight", body: b}
		case "reweight_batch":
			// One multi-vector reweight: BatchSize probability vectors over
			// the shared structure, answered as an indexed results array the
			// engine serves through its batched kernel.
			job := solveBody()
			job.ProbsBatch = make([]map[string]string, batchSize)
			for v := range job.ProbsBatch {
				job.ProbsBatch[v] = probsVec()
			}
			b, _ := json.Marshal(job)
			rq = request{kind: kind, path: "/reweight", body: b, jobs: batchSize}
		case "batch", "stream":
			jobs := make([]wireJob, batchSize)
			for j := range jobs {
				if j%2 == 0 {
					jobs[j] = solveBody()
				} else {
					jobs[j] = reweightBody()
				}
			}
			b, _ := json.Marshal(wireBatch{Jobs: jobs})
			if kind == "stream" {
				rq = request{kind: kind, path: "/batch?stream=1", body: b, jobs: batchSize, stream: true}
			} else {
				rq = request{kind: kind, path: "/batch", body: b, jobs: batchSize}
			}
		case "bad":
			// Malformed by construction: an edge before any vertices
			// directive. Must draw a 400, never a 5xx.
			b, _ := json.Marshal(wireJob{QueryText: "edge 0 1 R\n", InstanceText: instText})
			rq = request{kind: kind, path: "/solve", body: b}
		case "hard":
			// A labeled needle query on a random-model instance is a
			// #P-hard cell; with fallback disabled the server must
			// answer 422 intractable rather than burn a worker.
			job := solveBody()
			job.Options = &wireOptions{DisableFallback: true, Precision: wopts.Precision, TimeoutMS: wopts.TimeoutMS}
			b, _ := json.Marshal(job)
			rq = request{kind: kind, path: "/solve", body: b}
		case "delta":
			// Live-instance traffic against the pre-created instances
			// (Run creates them before firing, so ordering under
			// concurrency cannot race a mutation ahead of its create).
			id := deltaIDs[r.Intn(len(deltaIDs))]
			switch r.Intn(5) {
			case 0, 1: // unconditional delta batch → 200
				var ops []wireDeltaOp
				for k := 0; k < 1+r.Intn(2); k++ {
					ops = append(ops, wireDeltaOp{Op: "set_prob", Edge: randEdgeKey(), Prob: fmt.Sprintf("%d/16", r.Intn(17))})
				}
				b, _ := json.Marshal(wireDeltaRequest{Deltas: ops})
				rq = request{kind: kind, path: "/instances/" + id + "/delta", body: b, plain: true}
			case 2: // deliberately stale CAS → accounted 409
				stale := staleVersion
				b, _ := json.Marshal(wireDeltaRequest{
					IfVersion: &stale,
					Deltas:    []wireDeltaOp{{Op: "set_prob", Edge: randEdgeKey(), Prob: "1/2"}},
				})
				rq = request{kind: kind, path: "/instances/" + id + "/delta", body: b, plain: true}
			case 3: // instance-scoped solve → 200
				b, _ := json.Marshal(wireJob{QueryText: queryText(), Options: wopts})
				rq = request{kind: kind, path: "/instances/" + id + "/solve", body: b}
			default: // interleaved instance-scoped reweight → 200
				b, _ := json.Marshal(wireJob{QueryText: queryText(), Probs: probsVec(), Options: wopts})
				rq = request{kind: kind, path: "/instances/" + id + "/reweight", body: b}
			}
		}
		reqs = append(reqs, rq)
	}
	return reqs, nil
}

// jobTimeoutMS resolves Options.JobTimeout to the wire value: default
// 5s, negative disables the budget entirely.
func jobTimeoutMS(d time.Duration) int64 {
	switch {
	case d < 0:
		return 0
	case d == 0:
		return (5 * time.Second).Milliseconds()
	default:
		return d.Milliseconds()
	}
}

func weightedKinds(m Mix) []string {
	if m == (Mix{}) {
		m = DefaultMix
	}
	var kinds []string
	add := func(kind string, w int) {
		for i := 0; i < w; i++ {
			kinds = append(kinds, kind)
		}
	}
	add("solve", m.Solve)
	add("reweight", m.Reweight)
	add("reweight_batch", m.ReweightBatch)
	add("batch", m.Batch)
	add("stream", m.Stream)
	add("bad", m.Bad)
	add("hard", m.Hard)
	add("delta", m.Delta)
	return kinds
}

// Run fires the replay workload and returns the accounting report. The
// returned error covers setup failures only; response anomalies are
// reported through the Report so a run can complete and still be judged
// unclean.
func Run(ctx context.Context, opts Options) (*Report, error) {
	targets := opts.Targets
	if len(targets) == 0 && opts.BaseURL != "" {
		targets = []string{opts.BaseURL}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("replay: no base URL")
	}
	if opts.Requests < 1 {
		opts.Requests = 1
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 4
	}
	if opts.N < 1 {
		opts.N = 64
	}
	r := rand.New(rand.NewSource(opts.Seed))
	corpus, err := BuildCorpus(r, opts.Family, opts.N)
	if err != nil {
		return nil, err
	}
	reqs, err := buildRequests(r, opts, corpus)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	if hasKind(reqs, "delta") {
		// Create the run's live instances before any traffic fires:
		// concurrency can then never race a delta ahead of its create,
		// so every instance-scoped status is deterministic taxonomy.
		if err := createDeltaInstances(ctx, client, targets, opts.Seed, probGraphText(corpus.Instance)); err != nil {
			return nil, err
		}
	}

	rep := &Report{ByKind: map[string]int{}, ByStatus: map[int]int{}}
	if len(targets) > 1 {
		rep.ByTarget = map[string]int{}
	}
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, len(reqs))
	fail := func(format string, args ...any) {
		if len(rep.Failures) < 8 {
			rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
		}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rq := reqs[i]
				target := targets[i%len(targets)]
				status, lat, lines, trailers, bodyErr := fire(ctx, client, target, i, rq)
				mu.Lock()
				rep.Requests++
				rep.ByKind[rq.kind]++
				rep.ByStatus[status]++
				if rep.ByTarget != nil {
					rep.ByTarget[target]++
				}
				if !TaxonomyStatuses[status] {
					rep.OffTaxonomy++
					fail("req %d (%s): status %d outside taxonomy", i, rq.kind, status)
				}
				if bodyErr != nil {
					rep.BodyErrors++
					fail("req %d (%s): %v", i, rq.kind, bodyErr)
				}
				// Line accounting covers streams the server actually
				// started (200): a shed or refused stream request is a
				// plain JSON error accounted by its status, not a
				// missing-lines violation.
				if rq.stream && status == http.StatusOK {
					rep.StreamJobs += rq.jobs
					rep.StreamLines += lines
					rep.StreamTrailers += trailers
				}
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	for i := range reqs {
		select {
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return rep, ctx.Err()
		case work <- i:
		}
	}
	close(work)
	wg.Wait()
	rep.Elapsed = time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.LatencyP50 = latencies[n/2]
		rep.LatencyP95 = latencies[n*95/100]
		rep.LatencyMax = latencies[n-1]
	}
	return rep, nil
}

func hasKind(reqs []request, kind string) bool {
	for _, rq := range reqs {
		if rq.kind == kind {
			return true
		}
	}
	return false
}

// createDeltaInstances registers the delta mix's live instances on
// every target. A duplicate-id 400 is tolerated (the ids are
// deterministic, so a rerun against a long-lived server finds its
// instances already there); anything else is a setup failure.
func createDeltaInstances(ctx context.Context, client *http.Client, targets []string, seed int64, instText string) error {
	for _, target := range targets {
		for _, id := range deltaInstanceIDs(seed) {
			body, _ := json.Marshal(wireCreateInstance{ID: id, InstanceText: instText})
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/instances", bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				return fmt.Errorf("replay: creating instance %s on %s: %v", id, target, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
				return fmt.Errorf("replay: creating instance %s on %s: status %d", id, target, resp.StatusCode)
			}
		}
	}
	return nil
}

// fire sends one request and validates the response body against the
// wire contract. It returns the HTTP status (0 on transport failure),
// the request latency, the stream line/trailer counts for stream
// requests, and a non-nil error on any body-contract violation.
func fire(ctx context.Context, client *http.Client, baseURL string, id int, rq request) (status int, lat time.Duration, lines, trailers int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+rq.path, bytes.NewReader(rq.body))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	reqID := strconv.Itoa(id)
	req.Header.Set("X-Phom-Request-Id", reqID)
	start := time.Now()
	resp, err := client.Do(req)
	lat = time.Since(start)
	if err != nil {
		return 0, lat, 0, 0, err
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if echo := resp.Header.Get("X-Phom-Request-Id"); echo != "" && echo != reqID {
		return status, lat, 0, 0, fmt.Errorf("request-id echo %q, want %q", echo, reqID)
	}
	// A stream request only answers NDJSON once the server commits to
	// the stream (200). Before that — body-cap 413, a gate shedding
	// with 503 — the response is an ordinary JSON error object and is
	// validated as one below.
	if rq.stream && status == http.StatusOK {
		lines, trailers, err = parseStream(resp.Body)
		if err != nil {
			return status, lat, lines, trailers, err
		}
		if lines != rq.jobs {
			return status, lat, lines, trailers, fmt.Errorf("stream returned %d lines for %d jobs", lines, rq.jobs)
		}
		if trailers != 1 {
			return status, lat, lines, trailers, fmt.Errorf("stream ended with %d trailers", trailers)
		}
		return status, lat, lines, trailers, nil
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return status, lat, 0, 0, err
	}
	if rq.jobs > 0 { // non-streamed batch
		var br wireBatchResponse
		if err := json.Unmarshal(buf.Bytes(), &br); err != nil {
			return status, lat, 0, 0, fmt.Errorf("batch body: %v", err)
		}
		if status == http.StatusOK && len(br.Results) != rq.jobs {
			return status, lat, 0, 0, fmt.Errorf("batch returned %d results for %d jobs", len(br.Results), rq.jobs)
		}
		return status, lat, 0, 0, nil
	}
	if rq.plain { // delta apply: a JSON object, not a solve result
		var m map[string]any
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			return status, lat, 0, 0, fmt.Errorf("delta body: %v", err)
		}
		return status, lat, 0, 0, nil
	}
	var res wireResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		return status, lat, 0, 0, fmt.Errorf("solve body: %v", err)
	}
	if status == http.StatusOK && res.Prob == "" && res.Code == "" {
		return status, lat, 0, 0, fmt.Errorf("200 with neither prob nor code")
	}
	return status, lat, 0, 0, nil
}

// parseStream reads an NDJSON stream, counting indexed result lines and
// done trailers.
func parseStream(r interface{ Read([]byte) (int, error) }) (lines, trailers int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var line wireStreamLine
		if err := json.Unmarshal([]byte(text), &line); err != nil {
			return lines, trailers, fmt.Errorf("stream line: %v", err)
		}
		switch {
		case line.Done != nil && *line.Done:
			trailers++
		case line.Index != nil:
			lines++
		default:
			return lines, trailers, fmt.Errorf("stream line is neither a result nor a trailer: %s", text)
		}
	}
	return lines, trailers, sc.Err()
}
