package phom

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"phom/internal/gen"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	// Query: x −R→ y −S→ z ←S− t (Example 2.2).
	q := New(4)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(1, 2, "S")
	q.MustAddEdge(3, 2, "S")

	// Instance: Figure 1.
	g := New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(0, 2, "R")
	g.MustAddEdge(1, 2, "R")
	g.MustAddEdge(1, 3, "R")
	g.MustAddEdge(0, 3, "R")
	g.MustAddEdge(2, 3, "S")
	h := NewProbGraph(g)
	h.MustSetEdgeProb(0, 2, Rat("0.1"))
	h.MustSetEdgeProb(1, 2, Rat("0.8"))
	h.MustSetEdgeProb(1, 3, Rat("0.1"))
	h.MustSetEdgeProb(0, 3, Rat("0.05"))
	h.MustSetEdgeProb(2, 3, Rat("0.7"))

	res, err := Solve(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob.Cmp(Rat("0.574")) != 0 {
		t.Fatalf("quickstart = %s, want 0.574", res.Prob.RatString())
	}
}

func TestPredictAPI(t *testing.T) {
	v := Predict(Class1WP, ClassDWT, true)
	if !v.Tractable {
		t.Fatal("labeled (1WP, DWT) must be tractable (Prop 4.10)")
	}
	v = Predict(Class2WP, ClassPT, false)
	if v.Tractable {
		t.Fatal("unlabeled (2WP, PT) must be hard (Prop 5.6)")
	}
}

func TestSolveBaselinesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		q := gen.RandInClass(r, ClassConnected, 1+r.Intn(4), []Label{"R", "S"})
		h := gen.RandProb(r, gen.RandInClass(r, ClassAll, 1+r.Intn(6), []Label{"R", "S"}), 0.3)
		bf := BruteForce(q, h)
		ls, err := LineageShannon(q, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Cmp(ls) != 0 {
			t.Fatalf("baselines disagree: %s vs %s", bf.RatString(), ls.RatString())
		}
	}
}

// ExampleSolve demonstrates the minimal workflow: build a query and an
// uncertain instance, and compute the match probability exactly.
func ExampleSolve() {
	// Query: a directed path of two R-edges.
	q := Path1WP("R", "R")

	// Instance: a chain of three R-edges; the middle one is uncertain.
	g := Path1WP("R", "R", "R")
	h := NewProbGraph(g)
	h.MustSetEdgeProb(1, 2, Rat("1/2"))

	res, _ := Solve(q, h, nil)
	fmt.Printf("Pr = %s via %s\n", res.Prob.RatString(), res.Method)
	// Output: Pr = 1/2 via x-property-2wp (Prop 4.11)
}

// ExamplePredict demonstrates the complexity classifier of Tables 1–3.
func ExamplePredict() {
	fmt.Println(Predict(Class1WP, ClassDWT, true))
	fmt.Println(Predict(Class1WP, ClassPT, true))
	// Output:
	// PTIME [Prop 4.10 + Lemma 3.7]
	// #P-hard [Prop 4.1]
}

func TestBigRatExactness(t *testing.T) {
	// 0.1 is parsed exactly as 1/10 (not a float64 approximation).
	if Rat("0.1").Cmp(big.NewRat(1, 10)) != 0 {
		t.Fatal("Rat must be exact")
	}
}

// TestCompileReweightAPI exercises the public compile/evaluate split:
// one compilation serves many probability assignments, byte-identical
// to fresh solves.
func TestCompileReweightAPI(t *testing.T) {
	q := Path1WP("R", "S")
	g := New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(1, 2, "S")
	g.MustAddEdge(1, 3, "S")
	h := NewProbGraph(g)
	h.MustSetEdgeProb(0, 1, Rat("1/2"))

	plan, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Opaque() {
		t.Fatal("1WP on DWT must compile to a structural plan")
	}
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		for i := 0; i < g.NumEdges(); i++ {
			if err := h.SetProb(i, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := Solve(q, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Evaluate(h.Probs())
		if err != nil {
			t.Fatal(err)
		}
		if got.Prob.RatString() != want.Prob.RatString() {
			t.Fatalf("trial %d: plan %s, solve %s", trial, got.Prob.RatString(), want.Prob.RatString())
		}
	}
}

// TestPlanSerializationAPI exercises the public wire form of compiled
// plans: MarshalBinary/UnmarshalBinary round-trips a plan that keeps
// evaluating byte-identically, and opaque plans refuse to serialize.
func TestPlanSerializationAPI(t *testing.T) {
	q := Path1WP("R", "S")
	g := New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(1, 2, "S")
	g.MustAddEdge(1, 3, "S")
	h := NewProbGraph(g)
	h.MustSetEdgeProb(0, 1, Rat("1/2"))

	cp, err := Compile(q, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := new(Plan)
	if err := restored.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		for i := 0; i < g.NumEdges(); i++ {
			if err := h.SetProb(i, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := cp.Evaluate(h.Probs())
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Evaluate(h.Probs())
		if err != nil {
			t.Fatal(err)
		}
		if got.Prob.RatString() != want.Prob.RatString() {
			t.Fatalf("trial %d: restored %s, original %s",
				trial, got.Prob.RatString(), want.Prob.RatString())
		}
	}

	// A hard cell compiles to an opaque plan, which has no wire form.
	hard := New(3)
	hard.MustAddEdge(0, 1, "R")
	hard.MustAddEdge(1, 2, "R")
	hard.MustAddEdge(0, 2, "R")
	opaque, err := Compile(Path1WP("R", "R"), NewProbGraph(hard), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !opaque.Opaque() {
		t.Fatal("triangle instance should be a hard cell")
	}
	if _, err := opaque.MarshalBinary(); err == nil {
		t.Fatal("opaque plan serialized")
	}
}

// ExampleCompile demonstrates the compile-once / evaluate-many workflow
// for probability sweeps over a fixed structure.
func ExampleCompile() {
	// Query: two consecutive R-edges; instance: a chain of two R-edges
	// whose second edge is uncertain. Compile once, sweep the weight.
	q := Path1WP("R", "R")
	h := NewProbGraph(Path1WP("R", "R"))

	plan, _ := Compile(q, h, nil)
	for _, p := range []string{"1/4", "1/2", "3/4"} {
		h.MustSetEdgeProb(1, 2, Rat(p))
		res, _ := plan.Evaluate(h.Probs())
		fmt.Printf("p=%s -> Pr=%s\n", p, res.Prob.RatString())
	}
	// Output:
	// p=1/4 -> Pr=1/4
	// p=1/2 -> Pr=1/2
	// p=3/4 -> Pr=3/4
}
