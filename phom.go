// Package phom is a library for probabilistic graph homomorphism — the
// combined-complexity study of conjunctive query evaluation on
// tuple-independent probabilistic databases over binary signatures — as
// introduced by Amarilli, Monet and Senellart, "Conjunctive Queries on
// Probabilistic Graphs: Combined Complexity" (PODS 2017).
//
// The central problem is PHom: given a directed, edge-labeled query graph
// G and a probabilistic instance graph (H, π) whose edges exist
// independently with rational probabilities, compute
//
//	Pr(G ⇝ H) = Σ over subgraphs H' of H with G ⇝ H' of Pr(H'),
//
// the probability that G has a homomorphism to a random subgraph of H.
//
// The package exposes:
//
//   - graph construction (New, Path1WP, Path2WP, DisjointUnion, …) and
//     probabilistic instances (NewProbGraph) with exact *big.Rat
//     probabilities;
//   - the paper's graph classes (Class1WP … ClassAll), membership tests
//     (Graph.InClass) and the inclusion lattice (ClassIncluded);
//   - the v2 request API: a Request (query or UCQ + instance +
//     functional options) evaluated by SolveContext and CompileContext
//     under a context.Context — cancellation and deadlines abort even
//     the exponential baselines within one checkpoint interval
//     (CheckpointInterval), and failures carry a typed ErrorCode
//     (ErrBadInput, ErrLimit, ErrIntractable, ErrCanceled,
//     ErrDeadline);
//   - Solve, which dispatches to a polynomial-time algorithm whenever the
//     input pair falls in a tractable cell of the paper's classification
//     (Propositions 3.6, 4.10, 4.11, 5.4, 5.5 and Lemma 3.7), and
//     otherwise to an exact exponential baseline;
//   - Compile and Plan, the two-stage form of Solve: one probability-
//     independent compilation serves arbitrarily many probability
//     assignments over the same structure, each at linear evaluation
//     cost;
//   - Predict, the complexity classifier reproducing Tables 1–3;
//   - BruteForce and LineageShannon, the exact exponential baselines;
//   - Engine, a concurrent batch evaluator (worker pool, in-flight
//     deduplication, memoization) with context-aware submission
//     (DoContext, SolveBatchContext) and completion-order streaming
//     (Stream), which also backs the cmd/phomserve HTTP service.
//
// The context-free Solve / SolveUCQ / Compile / CompileUCQ remain as
// thin v1 compatibility shims over the v2 path with byte-identical
// results; new code should construct a Request and call the *Context
// functions. All probability arithmetic is exact. See DESIGN.md for
// the system inventory (including the request API and error taxonomy)
// and EXPERIMENTS.md for the reproduction of every table and figure of
// the paper.
package phom

import (
	"context"
	"math/big"

	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/plan"
)

// Core graph types, re-exported from the implementation packages so that
// user code only imports phom.
type (
	// Graph is a directed graph with labeled edges and no multi-edges.
	Graph = graph.Graph
	// ProbGraph is a probabilistic graph (H, π).
	ProbGraph = graph.ProbGraph
	// Vertex identifies a vertex (0 … n−1).
	Vertex = graph.Vertex
	// Label is an edge label from the finite alphabet σ.
	Label = graph.Label
	// Edge is a directed labeled edge.
	Edge = graph.Edge
	// Step describes one edge of a two-way path literal.
	Step = graph.Step
	// Homomorphism maps query vertices to instance vertices.
	Homomorphism = graph.Homomorphism
	// Class is one of the paper's graph classes.
	Class = graph.Class
)

// Unlabeled is the conventional label for the unlabeled setting (|σ|=1).
const Unlabeled = graph.Unlabeled

// The graph classes of the paper (§2, Figure 2).
const (
	Class1WP       = graph.Class1WP
	Class2WP       = graph.Class2WP
	ClassDWT       = graph.ClassDWT
	ClassPT        = graph.ClassPT
	ClassConnected = graph.ClassConnected
	ClassU1WP      = graph.ClassU1WP
	ClassU2WP      = graph.ClassU2WP
	ClassUDWT      = graph.ClassUDWT
	ClassUPT       = graph.ClassUPT
	ClassAll       = graph.ClassAll
)

// AllClasses lists every class in a fixed order.
var AllClasses = graph.AllClasses

// New returns a graph with n isolated vertices.
func New(n int) *Graph { return graph.New(n) }

// NewProbGraph wraps g with every edge certain; adjust with SetProb.
func NewProbGraph(g *Graph) *ProbGraph { return graph.NewProbGraph(g) }

// Path1WP builds the one-way path with the given edge labels.
func Path1WP(labels ...Label) *Graph { return graph.Path1WP(labels...) }

// UnlabeledPath builds the unlabeled one-way path →^m.
func UnlabeledPath(m int) *Graph { return graph.UnlabeledPath(m) }

// Path2WP builds the two-way path following the given steps.
func Path2WP(steps ...Step) *Graph { return graph.Path2WP(steps...) }

// Fwd is a forward step for Path2WP.
func Fwd(l Label) Step { return graph.Fwd(l) }

// Bwd is a backward step for Path2WP.
func Bwd(l Label) Step { return graph.Bwd(l) }

// DisjointUnion concatenates graphs, returning the union and the vertex
// offset of each part.
func DisjointUnion(parts ...*Graph) (*Graph, []Vertex) { return graph.DisjointUnion(parts...) }

// Rat parses an exact rational probability such as "1/2" or "0.35"; it
// panics on malformed input (intended for literals — parse untrusted
// input with ParseRat, which returns a typed ErrBadInput instead).
func Rat(s string) *big.Rat { return graph.Rat(s) }

// ClassIncluded reports whether class a is included in class b per the
// inclusion diagram of Figure 2.
func ClassIncluded(a, b Class) bool { return graph.ClassIncluded(a, b) }

// HasHomomorphism decides G ⇝ H (non-probabilistic) by backtracking
// search; exponential in the worst case.
func HasHomomorphism(query, instance *Graph) bool { return graph.HasHomomorphism(query, instance) }

// Equivalent reports whether two query graphs are homomorphically
// equivalent (G ⇝ H iff G' ⇝ H for all H).
func Equivalent(g1, g2 *Graph) bool { return graph.Equivalent(g1, g2) }

// Solver types, re-exported.
type (
	// Method identifies the algorithm Solve used.
	Method = core.Method
	// Options configures Solve.
	Options = core.Options
	// Result is the outcome of Solve.
	Result = core.Result
	// Verdict is a predicted complexity classification.
	Verdict = core.Verdict
)

// Precision selects the numeric substrate of plan evaluation (see
// Options.Precision): exact rational arithmetic, the certified float64
// interval kernel, or automatic routing between the two.
type Precision = core.Precision

// The precision modes. PrecisionExact (the zero value) computes exact
// rationals; PrecisionFast runs the float64 interval kernel and
// reports a certified absolute-error bound (Result.Bounds);
// PrecisionAuto serves the float answer when its certified bound is
// within Options.FloatTolerance and falls back to exact arithmetic —
// byte-identical to PrecisionExact — otherwise; PrecisionApprox
// answers #P-hard cells with the seeded Karp–Luby (ε,δ) estimator
// (Options.Epsilon/Delta/Seed) instead of an exponential baseline,
// reporting statistical Hoeffding bounds, and evaluates tractable
// cells exactly.
const (
	PrecisionExact  = core.PrecisionExact
	PrecisionFast   = core.PrecisionFast
	PrecisionAuto   = core.PrecisionAuto
	PrecisionApprox = core.PrecisionApprox
)

// DefaultFloatTolerance is the default certified-error cap of
// PrecisionAuto (Options.FloatTolerance = 0).
const DefaultFloatTolerance = core.DefaultFloatTolerance

// DefaultEpsilon and DefaultDelta are the default (ε,δ) guarantee of
// PrecisionApprox (Options.Epsilon = 0 / Options.Delta = 0): relative
// error 5% with failure probability 1%.
const (
	DefaultEpsilon = core.DefaultEpsilon
	DefaultDelta   = core.DefaultDelta
)

// ParsePrecision parses "exact", "fast", "auto" or "approx" (and "" as
// exact).
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// Enclosure is a certified float64 interval [Lo, Hi] guaranteed to
// contain an exact probability; fast-precision results carry one as
// Result.Bounds.
type Enclosure = plan.Enclosure

// The solver methods.
const (
	MethodTrivial        = core.MethodTrivial
	MethodLabelMismatch  = core.MethodLabelMismatch
	MethodGradedDWT      = core.MethodGradedDWT
	MethodBetaAcyclicDWT = core.MethodBetaAcyclicDWT
	MethodXProperty2WP   = core.MethodXProperty2WP
	MethodAutomatonPT    = core.MethodAutomatonPT
	MethodBruteForce     = core.MethodBruteForce
	MethodLineage        = core.MethodLineage
	MethodKarpLuby       = core.MethodKarpLuby
)

// Solve computes Pr(G ⇝ H) exactly, using a polynomial-time algorithm
// whenever the input pair lies in a tractable cell of the paper's
// classification and an exponential baseline otherwise (unless
// opts.DisableFallback is set). opts may be nil for defaults.
//
// Solve is the v1 compatibility shim over the v2 request path — a thin
// wrapper around SolveContext under context.Background(), with
// byte-identical results; new code should prefer SolveContext, which
// adds cancellation, deadlines and typed errors.
func Solve(query *Graph, instance *ProbGraph, opts *Options) (*Result, error) {
	return SolveContext(context.Background(), NewRequest(query, instance, WithOptions(opts)))
}

// Plan is a compiled solver plan: the probability-independent phase of
// Solve, reusable across probability assignments. Compile once, then
// Evaluate per assignment — Evaluate takes the probability vector in
// the instance's edge-list order (ProbGraph.Probs) and returns results
// byte-identical to Solve on the correspondingly reweighted instance.
// Every tractable cell evaluates in linear time; #P-hard cells compile
// to an opaque plan that re-solves per evaluation (Plan.Opaque reports
// this). Plans are immutable and safe for concurrent use.
//
// Non-opaque plans are first-class data: internally a flattened
// evaluation program (see DESIGN.md, "Evaluation IR and plan
// serialization") with a canonical binary form via MarshalBinary /
// UnmarshalBinary, so compiled structures can be persisted and shipped
// between processes. An Engine's plan cache uses this to warm-start
// (Engine.SavePlans / LoadPlans, EngineOptions.PlanSnapshotPath).
type Plan = core.CompiledPlan

// Compile runs the probability-independent phase of Solve on
// (query, instance): validation, classification, dispatch, and
// construction of the evaluation artifact (lineage systems, d-DNNF
// circuits). The instance's probabilities are used only for validation;
// the plan depends solely on structure.
//
// Compile is the v1 compatibility shim over CompileContext under
// context.Background(), with identical plans; new code should prefer
// CompileContext.
func Compile(query *Graph, instance *ProbGraph, opts *Options) (*Plan, error) {
	return CompileContext(context.Background(), NewRequest(query, instance, WithOptions(opts)))
}

// CompileUCQ is Compile for a union of conjunctive queries — the v1
// shim over CompileContext with a NewUCQRequest.
func CompileUCQ(queries UCQ, instance *ProbGraph, opts *Options) (*Plan, error) {
	return CompileContext(context.Background(), NewUCQRequest(queries, instance, WithOptions(opts)))
}

// BruteForce computes Pr(G ⇝ H) by possible-world enumeration —
// exponential in the number of uncertain edges, but exact; it is the
// reference oracle.
func BruteForce(query *Graph, instance *ProbGraph) *big.Rat {
	return core.BruteForce(query, instance)
}

// LineageShannon computes Pr(G ⇝ H) by enumerating matches and running
// Shannon expansion on the DNF lineage; exponential in the worst case.
// maxMatches caps match enumeration (0 = unbounded).
func LineageShannon(query *Graph, instance *ProbGraph, maxMatches int) (*big.Rat, error) {
	return core.LineageShannon(query, instance, maxMatches)
}

// Predict returns the combined complexity (PTIME or #P-hard, with the
// paper result it follows from) of PHom restricted to the given query and
// instance classes, in the labeled or unlabeled setting — the cells of
// Tables 1–3.
func Predict(queryClass, instanceClass Class, labeled bool) Verdict {
	return core.Predict(queryClass, instanceClass, labeled)
}

// UCQ is a union of conjunctive queries: a disjunction of query graphs
// (a query-language extension suggested in the paper's conclusion).
type UCQ = core.UCQ

// SolveUCQ computes Pr(G₁ ∨ … ∨ G_k ⇝ H). The tractable cases of the
// paper lift to unions (their β-acyclic lineage families are closed
// under union); outside them an exponential baseline is used unless
// disabled.
//
// SolveUCQ is the v1 compatibility shim over SolveContext with a
// NewUCQRequest, byte-identical to the v2 path; new code should prefer
// SolveContext.
func SolveUCQ(queries UCQ, instance *ProbGraph, opts *Options) (*Result, error) {
	return SolveContext(context.Background(), NewUCQRequest(queries, instance, WithOptions(opts)))
}

// CountWorlds solves the unweighted variant of PHom (all uncertain edges
// at probability 1/2, §6): the number of possible worlds admitting a
// homomorphism, and the number of coins (the count is out of 2^coins).
func CountWorlds(query *Graph, instance *ProbGraph, opts *Options) (*big.Int, int, error) {
	return core.CountWorlds(query, instance, opts)
}
