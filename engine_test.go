package phom

import (
	"math/rand"
	"testing"

	"phom/internal/gen"
)

// TestEnginePublicAPI exercises the public Engine surface: NewEngine,
// Solve, SolveBatch, Stats and Close, checking batch results against
// sequential Solve.
func TestEnginePublicAPI(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	labels := []Label{"R", "S"}
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{
			Query:    gen.Rand1WP(r, 3, labels),
			Instance: gen.RandProb(r, gen.RandInClass(r, ClassUDWT, 25, labels), 0.5),
		})
	}
	jobs = append(jobs, jobs...) // duplicates exercise the cache

	e := NewEngine(EngineOptions{Workers: 4})
	results := e.SolveBatch(jobs)
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		want, err := Solve(jobs[i].Query, jobs[i].Instance, nil)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		if jr.Result.Prob.RatString() != want.Prob.RatString() {
			t.Errorf("job %d: engine %s, sequential %s", i, jr.Result.Prob.RatString(), want.Prob.RatString())
		}
	}
	if st := e.Stats(); st.CacheHits+st.Coalesced == 0 {
		t.Errorf("no deduplication on duplicate jobs: %+v", st)
	}

	// Single-job path and close semantics.
	res, err := e.Solve(jobs[0].Query, jobs[0].Instance, nil)
	if err != nil || res.Prob.Sign() < 0 {
		t.Fatalf("Solve: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(jobs[0].Query, jobs[0].Instance, nil); err != ErrEngineClosed {
		t.Errorf("after Close: err = %v, want ErrEngineClosed", err)
	}
}
