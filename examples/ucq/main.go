// Unions of conjunctive queries (the extension suggested in §6 of the
// paper, after Dalvi & Suciu [20]): a monitoring scenario over an
// uncertain event log. The log is a labeled two-way path (events in
// temporal order, with edges oriented by causality direction); alerts
// are disjunctions of pattern queries, evaluated in polynomial time by
// merging their β-acyclic interval lineages (Proposition 4.11 lifted).
//
// Run with: go run ./examples/ucq
package main

import (
	"context"
	"fmt"
	"log"

	"phom"
	"phom/internal/core"
)

func main() {
	// The uncertain event log: a labeled 2WP of events; labels are event
	// kinds, edge orientations follow causality, and probabilities are
	// the detector's confidence in each event transition.
	logGraph := phom.Path2WP(
		phom.Fwd("login"), // 0.9
		phom.Fwd("read"),  // 0.8
		phom.Fwd("write"), // 0.6
		phom.Fwd("login"), // certain
		phom.Fwd("write"), // 0.7
		phom.Fwd("write"), // 0.5  (shared by patterns 1 and 3)
		phom.Bwd("write"), // 0.4
		phom.Fwd("read"),  // 0.9
	)
	h := phom.NewProbGraph(logGraph)
	for i, p := range []string{"0.9", "0.8", "0.6", "1", "0.7", "0.5", "0.4", "0.9"} {
		if err := h.SetProb(i, phom.Rat(p)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("event log: %d events (2WP: %v)\n", h.G.NumVertices(), h.G.Is2WP())

	// Alert patterns: any of these sequences firing raises the alert.
	patterns := phom.UCQ{
		phom.Path1WP("login", "write", "write"),
		phom.Path1WP("write", "login", "write"),
		phom.Path2WP(phom.Fwd("write"), phom.Bwd("write"), phom.Fwd("read")),
	}
	for i, p := range patterns {
		res, err := phom.Solve(p, h, &phom.Options{DisableFallback: true})
		if err != nil {
			log.Fatal(err)
		}
		f, _ := res.Prob.Float64()
		fmt.Printf("  pattern %d alone: Pr ≈ %.6f\n", i+1, f)
	}

	// The union, via the lifted PTIME algorithm on the v2 request API
	// (WithoutFallback fails with phom.ErrIntractable rather than
	// silently running an exponential baseline). Note the union
	// probability is NOT 1 − Π(1 − pᵢ): the disjuncts share edges, so
	// they are correlated; only the merged lineage accounts for that.
	res, err := phom.SolveContext(context.Background(),
		phom.NewUCQRequest(patterns, h, phom.WithoutFallback()))
	if err != nil {
		log.Fatal(err)
	}
	f, _ := res.Prob.Float64()
	fmt.Printf("alert (union of all 3): Pr ≈ %.6f via %s\n", f, res.Method)

	// Exact cross-check against the UCQ world enumeration (the log has
	// only 7 coins, so enumeration is feasible).
	small := h
	lifted, err := phom.SolveUCQ(patterns, small, &phom.Options{DisableFallback: true})
	if err != nil {
		log.Fatal(err)
	}
	brute, err := core.BruteForceUCQ(patterns, small, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle check on a small log: %v\n", lifted.Prob.Cmp(brute) == 0)

	// The unweighted counting mode (§6): with all detector confidences
	// at 1/2, count the satisfying worlds exactly.
	coin := phom.NewProbGraph(small.G.Clone())
	for i := 0; i < coin.G.NumEdges(); i++ {
		if err := coin.SetProb(i, phom.Rat("1/2")); err != nil {
			log.Fatal(err)
		}
	}
	n, coins, err := phom.CountWorlds(patterns[0], coin, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unweighted mode: pattern 1 holds in %s of 2^%d worlds\n", n, coins)
}
