// Quickstart: build the probabilistic graph of Figure 1 of the paper,
// ask the query of Example 2.2, and compute its probability exactly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"phom"
)

func main() {
	// The query graph G of Example 2.2:  x −R→ y −S→ z ←S− t,
	// i.e. the conjunctive query ∃xyzt R(x,y) ∧ S(y,z) ∧ S(t,z).
	q := phom.New(4)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(1, 2, "S")
	q.MustAddEdge(3, 2, "S")

	// The probabilistic instance graph (H, π) of Figure 1: five R-edges
	// and one S-edge, each with an independent existence probability.
	g := phom.New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(0, 2, "R")
	g.MustAddEdge(1, 2, "R")
	g.MustAddEdge(1, 3, "R")
	g.MustAddEdge(0, 3, "R")
	g.MustAddEdge(2, 3, "S")
	h := phom.NewProbGraph(g)
	h.MustSetEdgeProb(0, 2, phom.Rat("0.1"))
	h.MustSetEdgeProb(1, 2, phom.Rat("0.8"))
	h.MustSetEdgeProb(1, 3, phom.Rat("0.1"))
	h.MustSetEdgeProb(0, 3, phom.Rat("0.05"))
	h.MustSetEdgeProb(2, 3, phom.Rat("0.7"))

	// SolveContext routes to the best algorithm; this pair needs the
	// exact exponential baseline (a general instance), which is fine at
	// this size. The request carries a timeout: were the instance huge,
	// the solve would abort with phom.ErrDeadline instead of running
	// away (the context-free phom.Solve(q, h, nil) shim still works and
	// answers byte-identically).
	req := phom.NewRequest(q, h, phom.WithTimeout(10*time.Second))
	res, err := phom.SolveContext(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := res.Prob.Float64()
	fmt.Printf("Pr(G ⇝ H) = %s ≈ %g   (method: %s)\n", res.Prob.RatString(), f, res.Method)
	fmt.Println("paper (Example 2.2): 0.7 × (1 − (1 − 0.1)(1 − 0.8)) = 0.574")

	// The classifier reproduces the paper's Tables 1–3 at class level.
	fmt.Println()
	fmt.Println("some cells of the classification:")
	fmt.Printf("  labeled   (1WP, DWT):      %v\n", phom.Predict(phom.Class1WP, phom.ClassDWT, true))
	fmt.Printf("  labeled   (1WP, PT):       %v\n", phom.Predict(phom.Class1WP, phom.ClassPT, true))
	fmt.Printf("  unlabeled (Connected, DWT): %v\n", phom.Predict(phom.ClassConnected, phom.ClassDWT, false))
}
