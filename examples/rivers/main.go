// Unlabeled polytree querying (Propositions 5.4/5.5): the instance is a
// river network — a polytree whose edges are stream segments that may be
// dry in a given season, with independent flow probabilities — and the
// query asks for a directed flow path of length m. The solver compiles
// the longest-path tree automaton into a d-DNNF lineage circuit.
//
// Run with: go run ./examples/rivers
package main

import (
	"fmt"
	"log"
	"math/rand"

	"phom"
	"phom/internal/gen"
)

func main() {
	// A seeded random polytree: confluences and distributaries make the
	// orientations mix, so the network is a genuine polytree, not a
	// downward tree.
	r := rand.New(rand.NewSource(2024))
	network := gen.RandPolytree(r, 400, nil)
	h := gen.RandProb(r, network, 0.4) // ~40% of segments always flow

	fmt.Printf("river network: %d junctions, %d segments (polytree: %v)\n",
		h.G.NumVertices(), h.G.NumEdges(), h.G.IsPolytree())

	// Sweep the path length m: probability that some watercourse of m
	// consecutive flowing segments exists.
	fmt.Println("\nPr[∃ directed flow path of length ≥ m]:")
	for m := 0; m <= 12; m += 2 {
		q := phom.UnlabeledPath(m)
		res, err := phom.Solve(q, h, &phom.Options{DisableFallback: true})
		if err != nil {
			log.Fatal(err)
		}
		f, _ := res.Prob.Float64()
		fmt.Printf("  m=%-3d Pr ≈ %.6f  via %s\n", m, f, res.Method)
	}

	// Branching queries collapse to paths in the unlabeled setting
	// (Proposition 5.5): a "delta" query — a tree of channels — has the
	// same probability as its longest downward path.
	delta := phom.New(6)
	delta.MustAddEdge(0, 1, phom.Unlabeled)
	delta.MustAddEdge(1, 2, phom.Unlabeled)
	delta.MustAddEdge(1, 3, phom.Unlabeled)
	delta.MustAddEdge(3, 4, phom.Unlabeled)
	delta.MustAddEdge(0, 5, phom.Unlabeled)
	resTree, err := phom.Solve(delta, h, &phom.Options{DisableFallback: true})
	if err != nil {
		log.Fatal(err)
	}
	resPath, _ := phom.Solve(phom.UnlabeledPath(3), h, nil)
	fmt.Printf("\ndelta query (height 3) vs →³: %v (Prop 5.5: they must be equal)\n",
		resTree.Prob.Cmp(resPath.Prob) == 0)
}
