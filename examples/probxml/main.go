// Probabilistic XML-style document querying (the setting the paper's
// conclusion highlights for Proposition 4.10): the instance is a labeled
// downward tree — an XML-like document whose elements were extracted by
// an uncertain information-extraction pipeline — and queries are labeled
// one-way paths, evaluated in polynomial time via the β-acyclic lineage
// algorithm.
//
// Run with: go run ./examples/probxml
package main

import (
	"fmt"
	"log"

	"phom"
)

// The document: a product catalog with three products; annotations
// (brand, review, rating) come from an extractor with confidence scores,
// modeled as edge probabilities.
func buildCatalog() *phom.ProbGraph {
	g := phom.New(0)
	add := func() phom.Vertex { return g.AddVertex() }
	catalog := add()

	type edge struct {
		from, to phom.Vertex
		prob     string
	}
	var uncertain []edge
	certain := func(from, to phom.Vertex, l phom.Label) {
		g.MustAddEdge(from, to, l)
	}
	maybe := func(from, to phom.Vertex, l phom.Label, p string) {
		g.MustAddEdge(from, to, l)
		uncertain = append(uncertain, edge{from, to, p})
	}

	for i := 0; i < 3; i++ {
		product := add()
		certain(catalog, product, "product")
		brand := add()
		// The brand annotation is extracted with varying confidence.
		maybe(product, brand, "brand", []string{"9/10", "3/5", "1/2"}[i])
		if i < 2 {
			review := add()
			maybe(product, review, "review", "4/5")
			rating := add()
			maybe(review, rating, "rating", []string{"2/3", "1/3"}[i])
		}
	}
	h := phom.NewProbGraph(g)
	for _, e := range uncertain {
		h.MustSetEdgeProb(e.from, e.to, phom.Rat(e.prob))
	}
	return h
}

func main() {
	doc := buildCatalog()
	fmt.Printf("document: %d elements, %d edges (labeled DWT: %v)\n",
		doc.G.NumVertices(), doc.G.NumEdges(), doc.G.InClass(phom.ClassDWT))

	// Path queries, in the style of XPath child-axis queries
	// /catalog/product/..., each a labeled 1WP.
	queries := []struct {
		name   string
		labels []phom.Label
	}{
		{"/catalog/product", []phom.Label{"product"}},
		{"/catalog/product/brand", []phom.Label{"product", "brand"}},
		{"/catalog/product/review", []phom.Label{"product", "review"}},
		{"/catalog/product/review/rating", []phom.Label{"product", "review", "rating"}},
	}
	for _, qspec := range queries {
		q := phom.Path1WP(qspec.labels...)
		res, err := phom.Solve(q, doc, &phom.Options{DisableFallback: true})
		if err != nil {
			log.Fatal(err)
		}
		f, _ := res.Prob.Float64()
		fmt.Printf("  %-34s Pr = %-10s ≈ %.4f  via %s\n",
			qspec.name, res.Prob.RatString(), f, res.Method)
	}

	// A cross-check with the exponential oracle, since the document is
	// small enough.
	q := phom.Path1WP("product", "review", "rating")
	want := phom.BruteForce(q, doc)
	res, _ := phom.Solve(q, doc, nil)
	fmt.Printf("\noracle check: %s == %s: %v\n",
		res.Prob.RatString(), want.RatString(), res.Prob.Cmp(want) == 0)
}
