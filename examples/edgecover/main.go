// Hardness in action (Proposition 3.3): counting edge covers of a
// bipartite graph reduces to PHom with a disconnected ⊔1WP query on a
// 1WP instance — the paper's simplest #P-hard cell. This example builds
// the reduction, recovers the edge-cover count exactly from the PHom
// probability, and shows the classifier flagging the cell.
//
// Run with: go run ./examples/edgecover
package main

import (
	"fmt"
	"log"

	"phom"
	"phom/internal/core"
	"phom/internal/counting"
	"phom/internal/reductions"
)

func main() {
	// The bipartite graph Γ of Figure 5: X = {x1, x2}, Y = {y1, y2, y3},
	// E = {e1 = (x1, y1), e2 = (x1, y2), e3 = (x2, y3), e4 = (x2, y2)}.
	gamma := &counting.BipartiteGraph{
		NX: 2, NY: 3,
		Edges: [][2]int{{0, 0}, {0, 1}, {1, 2}, {1, 1}},
	}
	want, err := gamma.CountEdgeCovers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Γ: |X|=%d |Y|=%d |E|=%d, edge covers (brute force): %s\n",
		gamma.NX, gamma.NY, len(gamma.Edges), want)

	// Build the Proposition 3.3 reduction.
	red, err := reductions.EdgeCoverLabeled(gamma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction: query ∈ ⊔1WP (%v), instance ∈ 1WP (%v), %d coins\n",
		red.Query.InClass(phom.ClassU1WP), red.Instance.G.Is1WP(), red.CoinExponent)

	// The classifier knows this cell is hard.
	fmt.Printf("classifier: PHomL(⊔1WP, 1WP) is %v\n",
		phom.Predict(phom.ClassU1WP, phom.Class1WP, true))

	// The solver refuses without fallback…
	if _, err := phom.Solve(red.Query, red.Instance, &phom.Options{DisableFallback: true}); err != nil {
		fmt.Printf("solver without fallback: %v\n", err)
	}

	// …and solves exactly with the exponential baseline, recovering the
	// count via Pr · 2^|E|.
	res, err := phom.Solve(red.Query, red.Instance, nil)
	if err != nil {
		log.Fatal(err)
	}
	got := red.CountFromProb(res.Prob)
	fmt.Printf("PHom probability = %s (via %s)\n", res.Prob.RatString(), res.Method)
	fmt.Printf("recovered edge-cover count = %s (match: %v)\n", got, got.Cmp(want) == 0)

	// The same count through the unlabeled simulation of Proposition 3.4.
	red2, err := reductions.EdgeCoverUnlabeled(gamma)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := core.BruteForceLimit(red2.Query, red2.Instance, 0)
	if err != nil {
		log.Fatal(err)
	}
	got2 := red2.CountFromProb(p2)
	fmt.Printf("unlabeled simulation (Prop 3.4): recovered count = %s (match: %v)\n",
		got2, got2.Cmp(want) == 0)
}
