// Command phomtables regenerates the complexity-classification tables of
// the paper (Tables 1, 2 and 3, plus the labeled disconnected case of
// §3.1) from the programmatic classifier, and optionally validates every
// PTIME cell empirically: random instances from the cell are solved by
// the dispatched polynomial-time algorithm and checked exactly against
// possible-world enumeration.
//
// Usage:
//
//	phomtables [-validate] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"phom/internal/core"
	"phom/internal/gen"
	"phom/internal/graph"
)

var (
	validate = flag.Bool("validate", false, "cross-check every PTIME cell against brute force")
	trials   = flag.Int("trials", 25, "random trials per validated cell")
	seed     = flag.Int64("seed", 1, "random seed for validation")
)

func main() {
	flag.Parse()

	table(
		"Table 1: PHom̸L for disconnected queries (unlabeled setting)",
		[]graph.Class{graph.ClassU1WP, graph.ClassU2WP, graph.ClassUDWT, graph.ClassUPT, graph.ClassAll},
		[]graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected},
		false,
	)
	table(
		"Table 2: PHomL in the connected case (labeled setting)",
		[]graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected},
		[]graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected},
		true,
	)
	table(
		"Table 3: PHom̸L in the connected case (unlabeled setting)",
		[]graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected},
		[]graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected},
		false,
	)
	table(
		"§3.1: PHomL for disconnected queries (labeled setting; all #P-hard)",
		[]graph.Class{graph.ClassU1WP, graph.ClassU2WP, graph.ClassUDWT, graph.ClassUPT, graph.ClassAll},
		[]graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected},
		true,
	)
}

func table(title string, rows, cols []graph.Class, labeled bool) {
	fmt.Println(title)
	fmt.Printf("%-12s", "↓G  H→")
	for _, c := range cols {
		fmt.Printf("%-14s", c)
	}
	fmt.Println()
	for _, qc := range rows {
		fmt.Printf("%-12s", qc)
		for _, ic := range cols {
			v := core.Predict(qc, ic, labeled)
			cellStr := "#P-hard"
			if v.Tractable {
				cellStr = "PTIME"
			}
			if *validate && v.Tractable {
				if err := validateCell(qc, ic, labeled); err != nil {
					fmt.Fprintf(os.Stderr, "\nvalidation FAILED for (%v, %v, labeled=%v): %v\n", qc, ic, labeled, err)
					os.Exit(1)
				}
				cellStr += "✓"
			}
			fmt.Printf("%-14s", cellStr)
		}
		fmt.Println()
	}
	fmt.Println()
	// Reasons for the border cells, as in the paper's table footnotes.
	fmt.Println("  citations:")
	seen := map[string]bool{}
	for _, qc := range rows {
		for _, ic := range cols {
			v := core.Predict(qc, ic, labeled)
			if !seen[v.Reason] {
				seen[v.Reason] = true
				kind := "#P-hard"
				if v.Tractable {
					kind = "PTIME"
				}
				fmt.Printf("    %-8s %s\n", kind, v.Reason)
			}
		}
	}
	fmt.Println()
}

func validateCell(qc, ic graph.Class, labeled bool) error {
	labels := []graph.Label{graph.Unlabeled}
	if labeled {
		labels = []graph.Label{"R", "S"}
	}
	r := rand.New(rand.NewSource(*seed + int64(qc)*100 + int64(ic)))
	for trial := 0; trial < *trials; trial++ {
		q := gen.RandInClass(r, qc, 1+r.Intn(4), labels)
		h := gen.RandProb(r, gen.RandInClass(r, ic, 1+r.Intn(8), labels), 0.3)
		res, err := core.Solve(q, h, &core.Options{DisableFallback: true})
		if err != nil {
			return fmt.Errorf("trial %d: %v", trial, err)
		}
		want := core.BruteForce(q, h)
		if res.Prob.Cmp(want) != 0 {
			return fmt.Errorf("trial %d: %s (via %v) != brute force %s",
				trial, res.Prob.RatString(), res.Method, want.RatString())
		}
	}
	return nil
}
