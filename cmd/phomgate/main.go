// Command phomgate fronts a tier of phomserve replicas with
// structure-sharded routing: jobs are consistent-hashed by
// graphio.StructKey so every reweight of a structure hits the replica
// whose plan cache compiled it, and horizontal scale multiplies —
// rather than dilutes — the caches each replica builds.
//
// The gate serves the phomserve wire protocol unchanged: /solve and
// /reweight proxy verbatim to the owning shard; /batch splits the job
// list by shard, fans out, and merges — with ?stream=1 the backend
// NDJSON streams are interleaved into one completion-order client
// stream, original job indices preserved. /healthz reports the tier:
// uptime, per-status response counts, shed, retry and cross-shard-batch
// counters, per-backend and tier-wide live-instance counts, and the
// shard map (backend → vnode count, alive/ejected, in-flight load).
//
// Live instances (/instances and /instances/{id}/...) route sticky:
// an instance's state exists on exactly one replica, so the gate
// hashes the instance id itself on the ring (owner-set width 1) and
// pins every request for that id to the owning replica. A create
// without a client-chosen id mints one at the gate before the ring
// lookup, so the create and every later delta/solve hash identically;
// GET /instances is the one fan-out, merging the per-replica id
// lists. Stateless single-job hops that fail at the transport level —
// no backend byte reached the client — are replayed once against the
// next live owner before the typed 503 (gate_retries in /healthz);
// instance hops are never replayed (the next owner does not hold the
// state), and typed backend errors are relayed untouched, never
// retried.
//
// Replicas are health-probed (-probe); consecutive failures eject one
// from the ring (its keys drain deterministically to ring successors)
// and recovery rejoins it. The gate also pulls GET /plans/export
// snapshots on a timer (-snapinterval) and pushes them back via
// POST /plans/import when a replica restarts (detected by a
// dead→alive transition or an uptime_ms regression), so a rejoining
// replica is hot from its first request — zero recompiles. With
// -snapdir the snapshots survive gate restarts too.
//
// Admission control prices every job (instance size × dispatch-class
// weight, refined online from observed latency) against a per-backend
// budget (-costbudget); refused requests get a typed 503 with a
// Retry-After predicting the backend's drain time.
//
// Usage:
//
//	phomgate -backends http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	         [-addr :8080] [-replication 1] [-vnodes 128] [-inflight 32]
//	         [-costbudget 0] [-probe 2s] [-snapinterval 30s]
//	         [-snapdir DIR] [-maxbody 8388608]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"phom/internal/gateway"
	"phom/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		backends    = flag.String("backends", "", "comma-separated phomserve base URLs (required)")
		replication = flag.Int("replication", 1, "ring owners per key; the least-loaded alive owner serves")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per backend (0 = default)")
		inflight    = flag.Int("inflight", gateway.DefaultMaxInflight, "max concurrent proxied requests per backend")
		costBudget  = flag.Float64("costbudget", 0, "per-backend admission budget in cost units (0 = no shedding)")
		probe       = flag.Duration("probe", 2*time.Second, "health-probe interval (0 disables probing)")
		snapEvery   = flag.Duration("snapinterval", 30*time.Second, "plan-snapshot pull interval (0 disables warm-start)")
		snapDir     = flag.String("snapdir", "", "directory persisting plan snapshots across gate restarts")
		maxBody     = flag.Int64("maxbody", serve.DefaultMaxBodyBytes, "request body cap in bytes")
	)
	flag.Parse()
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	g, err := gateway.New(gateway.Config{
		Backends:         urls,
		Replication:      *replication,
		VNodes:           *vnodes,
		MaxInflight:      *inflight,
		CostBudget:       *costBudget,
		ProbeInterval:    *probe,
		SnapshotInterval: *snapEvery,
		SnapshotDir:      *snapDir,
		MaxBody:          *maxBody,
	})
	if err != nil {
		log.Fatalf("phomgate: %v", err)
	}
	g.Start()
	defer g.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("phomgate: listening on %s, %d backends, replication %d", *addr, len(urls), *replication)

	select {
	case <-ctx.Done():
		log.Printf("phomgate: signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("phomgate: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("phomgate: %v", err)
		}
	}
}
