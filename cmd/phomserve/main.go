// Command phomserve serves PHom evaluation over HTTP JSON, backed by the
// concurrent engine of internal/engine (worker pool, in-flight
// deduplication, LRU memoization). Probabilities are computed exactly by
// default and returned both as rational strings and float64
// approximations, together with the algorithm used and the predicted
// combined complexity of the input pair (the Tables 1–3 verdict). Jobs
// may instead request the dual-precision fast path ("options":
// {"precision": "fast" | "auto"}) and get a float64 answer with a
// certified error bound (prob_lo/prob_hi in the response); auto falls
// back to exact arithmetic when the bound exceeds float_tolerance. The
// /healthz counters float_fast and float_fallbacks report how often
// each substrate answered.
//
// Endpoints:
//
//	POST /solve    one job: {"query": {...} | "query_text": "...",
//	               "instance": {...} | "instance_text": "...",
//	               "options": {...}}; unions use "queries"/"queries_text".
//	POST /reweight a solve job plus {"probs": {"from>to": "1/2", ...}}:
//	               solves with the given probabilities substituted. Jobs
//	               whose structure was seen before evaluate a cached
//	               compiled plan instead of re-solving ("plan_hit": true
//	               in the response) — the fast path for what-if analysis
//	               and probability sweeps. The multi-vector form
//	               {"probs_batch": [{...}, {...}]} evaluates many
//	               probability vectors over the one structure in a
//	               single vectorized batch and answers with per-vector
//	               results ({"results": [...], "stats": {...}}).
//	POST /batch    {"jobs": [ ... ]}; results in job order, per-job errors.
//	               With ?stream=1 the results come back as NDJSON in
//	               completion order instead — one line per job tagged
//	               with its index, then a {"done":true,...} trailer —
//	               so huge batches start answering immediately and the
//	               server never buffers the full result slice.
//	POST /instances  create a named live instance ({"id": "...",
//	               "instance": {...} | "instance_text": "..."}; an empty
//	               id mints one). GET lists the live instance ids.
//	GET  /instances/{id}  version, size, lifetime delta count and the
//	               per-component class census; DELETE removes the
//	               instance and evicts its cached plans and results.
//	POST /instances/{id}/delta  apply a batch of typed deltas
//	               ({"deltas": [{"op": "set_prob" | "add_edge" |
//	               "remove_edge", "edge": "from>to", "prob": "1/4",
//	               "label": "R"}]}) atomically as one new version.
//	               Optional "if_version" is an optimistic concurrency
//	               check: a mismatch answers the typed conflict (409)
//	               and changes nothing. Probability-only batches keep
//	               every compiled plan valid (the next solve is a pure
//	               reweight); structural batches migrate plans
//	               incrementally (engine counters
//	               incremental_recompiles / full_recompiles).
//	POST /instances/{id}/solve|reweight|batch  the stateless job
//	               shapes evaluated against the instance's current
//	               snapshot; the answering version rides the
//	               X-Phom-Instance-Version response header. In-flight
//	               solves finish against their pre-delta snapshot.
//	GET  /plans/export  binary snapshot of the compiled-plan cache
//	               (the canonical plan encoding of internal/graphio).
//	POST /plans/import  restore a snapshot into the plan cache; jobs
//	               whose structure is covered then serve reweights
//	               without compiling at all (warm start).
//	GET  /healthz  liveness plus engine statistics (including the
//	               plan-cache counters plan_hits/plan_compiles and the
//	               snapshot counters plans_loaded/plans_saved).
//
// Graphs are accepted as graphio JSON objects or as the line-oriented
// text format that cmd/phom reads. Request bodies are bounded by
// -maxbody (413 beyond it). With -plansnapshot FILE the engine
// restores its plan cache from FILE at boot (if present) and writes it
// back on clean shutdown, so recompilations do not survive restarts.
//
// Failures carry the typed error taxonomy of the phom package, both as
// a machine-readable "code" field and as the HTTP status:
// bad-input → 400, conflict → 409, deadline → 408 (including a job's own
// "options": {"timeout_ms": N} budget), limit/intractable → 422,
// canceled → 499, unavailable → 503. Every job runs under its request
// context plus the server's shutdown context: a dropped connection or
// SIGTERM cancels in-flight solves at their next cooperative
// checkpoint instead of burning CPU on abandoned work.
//
// See DESIGN.md (Serving layer, Request API and cancellation) and
// README.md for examples.
//
// The HTTP layer itself lives in internal/serve (shared with the
// phomgate router and the benchmark harness); this command is the thin
// process wrapper: flags, engine lifecycle, and graceful shutdown.
// Behind cmd/phomgate, give each replica a -shard name so its /healthz
// identifies which slice of the ring it is serving.
//
// Usage:
//
//	phomserve [-addr :8080] [-workers 0] [-cache 4096] [-plancache 1024]
//	          [-maxbody 8388608] [-plansnapshot plans.bin]
//	          [-precision exact] [-floattol 0] [-shard name]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"phom/internal/core"
	"phom/internal/engine"
	"phom/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		cache     = flag.Int("cache", 0, fmt.Sprintf("result cache capacity (0 = %d, negative disables)", engine.DefaultCacheSize))
		planCache = flag.Int("plancache", 0, fmt.Sprintf("compiled-plan cache capacity (0 = %d, negative disables)", engine.DefaultPlanCacheSize))
		maxBody   = flag.Int64("maxbody", serve.DefaultMaxBodyBytes, "request body cap in bytes (oversized requests get 413)")
		planSnap  = flag.String("plansnapshot", "", "plan-cache snapshot file: restored at boot if present, written on shutdown")
		precision = flag.String("precision", "exact", "default precision for jobs that do not choose one: exact, fast or auto")
		floatTol  = flag.Float64("floattol", 0, fmt.Sprintf("default auto-mode tolerance: widest certified error served without exact fallback (0 = %g)", core.DefaultFloatTolerance))
		shard     = flag.String("shard", "", "shard name reported by /healthz (set by the gate's recipe, purely observational)")
	)
	flag.Parse()
	defPrec, err := core.ParsePrecision(*precision)
	if err != nil {
		log.Fatalf("phomserve: -precision: %v", err)
	}
	if err := (&core.Options{FloatTolerance: *floatTol}).Validate(); err != nil {
		log.Fatalf("phomserve: -floattol: %v", err)
	}

	// The signal context is the engine's base context: SIGTERM/SIGINT
	// does not only stop accepting HTTP — it cancels every in-flight
	// solve, so Shutdown's connection drain is not stuck behind
	// exponential jobs nobody will receive.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng := engine.New(engine.Options{
		Workers:          *workers,
		CacheSize:        *cache,
		PlanCacheSize:    *planCache,
		PlanSnapshotPath: *planSnap,
		BaseContext:      ctx,
	})
	defer func() {
		if err := eng.Close(); err != nil {
			log.Printf("phomserve: %v", err)
		}
	}()
	if *planSnap != "" {
		st := eng.Stats()
		log.Printf("phomserve: plan snapshot %s: %d plans restored (%d errors)",
			*planSnap, st.PlansLoaded, st.SnapshotErrors)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(eng).WithMaxBody(*maxBody).WithPrecision(defPrec, *floatTol).WithShard(*shard).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("phomserve: listening on %s (%d workers)", *addr, eng.Workers())

	select {
	case <-ctx.Done():
		// In-flight engine jobs are already being cancelled through the
		// base context; Shutdown then drains the (now fast-failing)
		// connections.
		log.Printf("phomserve: signal received, shutting down (cancelling in-flight jobs)")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("phomserve: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("phomserve: %v", err)
		}
	}
}
