// Command phomgen generates seeded workloads for the phom toolchain:
// random probabilistic instances from thirteen generator families
// (class-driven 1wp/2wp/dwt/pt/… plus the Erdős–Rényi, Barabási–Albert
// and power-law random-graph models), graded query ladders, and
// reachability-style UCQs — all emitted in the graphio wire format. In
// replay mode it instead fires a seeded traffic mix at a running
// phomserve endpoint and accounts for every response.
//
// Generate an instance (self-verified: the output is re-parsed through
// graphio and checked to land in the family's claimed class before
// phomgen exits zero):
//
//	phomgen -family ba -n 200 -seed 7 > instance.txt
//	phomgen -family er -n 500 -p 0.01 -format json
//	phomgen -family plaw -n 300 -alpha 2.2 -format dot
//
// Generate queries:
//
//	phomgen -query 2wp:5 -seed 3        # one 2WP query of size 5
//	phomgen -ladder dwt:3:6 -seed 3     # DWT queries of sizes 3..6
//	phomgen -ucq 4                      # reachability UCQ, paths 1..4
//
// Replay a seeded traffic mix against phomserve:
//
//	phomgen -replay http://localhost:8080 -requests 500 \
//	    -mix solve:4,reweight:8,batch:1,stream:1,bad:1,hard:1
//	phomgen -replay http://localhost:8080 -requests 500 \
//	    -mix reweight-heavy -batchsize 32
//	phomgen -replay http://gate:8080 -requests 2000   # drive a phomgate tier
//	phomgen -replay http://a:8081,http://b:8082       # round-robin replicas
//	phomgen -replay http://localhost:8080 -mix delta -requests 500
//
// The mix accepts kind:weight pairs (solve, reweight, reweight_batch,
// batch, stream, bad, hard, delta) or a preset name: "default",
// "reweight-heavy" for a probability-sweep profile dominated by
// multi-vector /reweight requests (probs_batch, -batchsize vectors per
// request) that the server routes through the engine's batched kernel,
// or "delta" for a live-instance profile that creates named instances
// up front and interleaves delta batches, deliberately stale
// if_version CAS batches (accounted 409s), and instance-scoped
// solves/reweights against them.
//
// Replay exits nonzero if any response falls outside the typed status
// taxonomy or violates the wire contract (Report.Unaccounted > 0).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/replay"
)

func main() {
	var (
		family  = flag.String("family", "er", "generator family: "+strings.Join(familyNames(), "|"))
		n       = flag.Int("n", 200, "target vertex count")
		seed    = flag.Int64("seed", 1, "random seed (all output is a pure function of flags+seed)")
		labels  = flag.String("labels", "R,S", "comma-separated edge labels")
		certain = flag.Float64("certain", 0.5, "fraction of edges kept certain (prob 1) in instances")
		pFlag   = flag.Float64("p", 0, "er: edge probability (0 = default 1.5/(n-1))")
		mFlag   = flag.Int("m", 0, "ba: edges per arriving vertex (0 = default 2)")
		alpha   = flag.Float64("alpha", 0, "plaw: degree exponent (0 = default 2.5)")
		format  = flag.String("format", "text", "output format: text|json|dot")
		out     = flag.String("o", "", "output file (default stdout)")
		query   = flag.String("query", "", "emit one query instead of an instance: class:size (e.g. 2wp:5)")
		ladder  = flag.String("ladder", "", "emit a query ladder: class:min:max (e.g. dwt:3:6)")
		ucq     = flag.Int("ucq", 0, "emit a reachability UCQ with path lengths 1..k (JSON array)")

		replayURL   = flag.String("replay", "", "replay mode: comma-separated base URL(s) to fire traffic at (phomserve replicas or a phomgate)")
		requests    = flag.Int("requests", 200, "replay: total requests")
		concurrency = flag.Int("concurrency", 4, "replay: in-flight requests")
		mixFlag     = flag.String("mix", "", "replay: traffic mix (kind:weight,... or a preset: default, reweight-heavy, delta)")
		batchSize   = flag.Int("batchsize", 4, "replay: jobs per batch/stream request and vectors per reweight_batch")
		precision   = flag.String("precision", "", "replay: options.precision on every job (exact|fast|auto)")
		jobTimeout  = flag.Duration("jobtimeout", 0, "replay: per-job timeout_ms budget (default 5s, negative disables)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	labs := parseLabels(*labels)
	r := rand.New(rand.NewSource(*seed))

	switch {
	case *replayURL != "":
		runReplay(*replayURL, *requests, *concurrency, *mixFlag, *batchSize, *precision, *jobTimeout, *family, *n, *seed)
	case *query != "":
		emitQuery(w, r, *query, labs, *format)
	case *ladder != "":
		emitLadder(w, r, *ladder, labs, *format)
	case *ucq > 0:
		emitUCQ(w, *ucq, labs)
	default:
		emitInstance(w, r, *family, *n, *certain, *pFlag, *mFlag, *alpha, labs, *format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phomgen:", err)
	os.Exit(1)
}

func familyNames() []string {
	fams := gen.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.String()
	}
	return out
}

func parseLabels(s string) []graph.Label {
	var labs []graph.Label
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			labs = append(labs, graph.Label(part))
		}
	}
	if len(labs) == 0 {
		labs = []graph.Label{"R"}
	}
	return labs
}

// emitInstance generates one probabilistic instance, self-verifies it
// (graphio round-trip plus class membership), and writes it out.
func emitInstance(w io.Writer, r *rand.Rand, family string, n int, certain, p float64, m int, alpha float64, labs []graph.Label, format string) {
	f, err := gen.ParseFamily(family)
	if err != nil {
		fatal(err)
	}
	var g *graph.Graph
	switch {
	case f == gen.FamER && p > 0:
		g = gen.RandErdosRenyi(r, n, p, labs)
	case f == gen.FamBA && m > 0:
		g = gen.RandBarabasiAlbert(r, n, m, labs)
	case f == gen.FamPLaw && alpha > 0:
		g = gen.RandPowerLaw(r, n, alpha, labs)
	default:
		g = gen.RandFamily(r, f, n, labs)
	}
	h := gen.RandProb(r, g, certain)
	if err := selfVerify(h, f); err != nil {
		fatal(err)
	}
	switch format {
	case "text":
		err = graphio.WriteProbGraph(w, h)
	case "json":
		var b []byte
		if b, err = graphio.MarshalProbGraphJSON(h); err == nil {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
	case "dot":
		err = graphio.WriteDOT(w, h, "H")
	default:
		err = fmt.Errorf("unknown format %q (want text|json|dot)", format)
	}
	if err != nil {
		fatal(err)
	}
}

// selfVerify round-trips h through the graphio text parser and checks
// the parsed graph lands in the family's claimed class — the generated
// bytes are proven wire-parseable and correctly classified before they
// are handed to the caller.
func selfVerify(h *graph.ProbGraph, f gen.Family) error {
	var buf bytes.Buffer
	if err := graphio.WriteProbGraph(&buf, h); err != nil {
		return err
	}
	parsed, err := graphio.ParseProbGraph(&buf)
	if err != nil {
		return fmt.Errorf("self-verify: output does not re-parse: %v", err)
	}
	if parsed.G.NumEdges() != h.G.NumEdges() || parsed.G.NumVertices() != h.G.NumVertices() {
		return fmt.Errorf("self-verify: round-trip changed the graph (%d/%d vertices, %d/%d edges)",
			parsed.G.NumVertices(), h.G.NumVertices(), parsed.G.NumEdges(), h.G.NumEdges())
	}
	if !parsed.G.InClass(f.Class()) {
		return fmt.Errorf("self-verify: %v instance is not in claimed class %v", f, f.Class())
	}
	return nil
}

func parseClassSpec(spec string) (gen.Family, []int, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return 0, nil, fmt.Errorf("bad spec %q: want class:size or class:min:max", spec)
	}
	f, err := gen.ParseFamily(parts[0])
	if err != nil {
		return 0, nil, err
	}
	sizes := make([]int, 0, len(parts)-1)
	for _, p := range parts[1:] {
		s, err := strconv.Atoi(p)
		if err != nil || s < 1 {
			return 0, nil, fmt.Errorf("bad size %q in %q", p, spec)
		}
		sizes = append(sizes, s)
	}
	return f, sizes, nil
}

func writeQuery(w io.Writer, q *graph.Graph, format string) {
	var err error
	switch format {
	case "text":
		err = graphio.WriteGraph(w, q)
	case "json":
		var b []byte
		if b, err = graphio.MarshalProbGraphJSON(graph.NewProbGraph(q)); err == nil {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
	case "dot":
		err = graphio.WriteDOT(w, graph.NewProbGraph(q), "Q")
	default:
		err = fmt.Errorf("unknown format %q (want text|json|dot)", format)
	}
	if err != nil {
		fatal(err)
	}
}

func emitQuery(w io.Writer, r *rand.Rand, spec string, labs []graph.Label, format string) {
	f, sizes, err := parseClassSpec(spec)
	if err != nil {
		fatal(err)
	}
	q := gen.RandFamily(r, f, sizes[0], labs)
	if !q.InClass(f.Class()) {
		fatal(fmt.Errorf("self-verify: %v query is not in claimed class %v", f, f.Class()))
	}
	writeQuery(w, q, format)
}

func emitLadder(w io.Writer, r *rand.Rand, spec string, labs []graph.Label, format string) {
	f, sizes, err := parseClassSpec(spec)
	if err != nil {
		fatal(err)
	}
	min, max := sizes[0], sizes[0]
	if len(sizes) == 2 {
		max = sizes[1]
	}
	for _, q := range gen.QueryLadder(r, f.Class(), min, max, labs) {
		if !q.InClass(f.Class()) {
			fatal(fmt.Errorf("self-verify: ladder rung left class %v", f.Class()))
		}
		writeQuery(w, q, format)
		fmt.Fprintln(w)
	}
}

// emitUCQ writes the reachability UCQ as a JSON array of graphio JSON
// graphs — the shape phomserve's "queries" field accepts.
func emitUCQ(w io.Writer, k int, labs []graph.Label) {
	disjuncts := gen.ReachabilityUCQ(k, labs[0])
	parts := make([]string, 0, len(disjuncts))
	for _, q := range disjuncts {
		b, err := graphio.MarshalProbGraphJSON(graph.NewProbGraph(q))
		if err != nil {
			fatal(err)
		}
		parts = append(parts, string(b))
	}
	fmt.Fprintf(w, "[\n%s\n]\n", strings.Join(parts, ",\n"))
}

func runReplay(url string, requests, concurrency int, mixSpec string, batchSize int, precision string, jobTimeout time.Duration, family string, n int, seed int64) {
	mix, err := replay.ParseMix(mixSpec)
	if err != nil {
		fatal(err)
	}
	f, err := gen.ParseFamily(family)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// -replay accepts a comma-separated target list: one URL drives a
	// single server (or a gate fronting a tier), several round-robin —
	// total accounting is identical either way.
	var targets []string
	for _, t := range strings.Split(url, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	rep, err := replay.Run(ctx, replay.Options{
		Targets:     targets,
		Requests:    requests,
		Concurrency: concurrency,
		Seed:        seed,
		Mix:         mix,
		Family:      f,
		N:           n,
		BatchSize:   batchSize,
		Precision:   precision,
		JobTimeout:  jobTimeout,
	})
	if err != nil {
		fatal(err)
	}
	printReport(os.Stdout, rep)
	if rep.Unaccounted() > 0 {
		fmt.Fprintf(os.Stderr, "phomgen: %d unaccounted responses\n", rep.Unaccounted())
		os.Exit(1)
	}
}

func printReport(w io.Writer, rep *replay.Report) {
	fmt.Fprintf(w, "replay: %d requests in %v (%.1f req/s)\n", rep.Requests, rep.Elapsed.Round(1e6), rep.Throughput())
	fmt.Fprintf(w, "  latency p50=%v p95=%v max=%v\n", rep.LatencyP50.Round(1e3), rep.LatencyP95.Round(1e3), rep.LatencyMax.Round(1e3))
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  kind %-9s %6d\n", k, rep.ByKind[k])
	}
	statuses := make([]int, 0, len(rep.ByStatus))
	for s := range rep.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(w, "  status %-8d %6d\n", s, rep.ByStatus[s])
	}
	targets := make([]string, 0, len(rep.ByTarget))
	for t := range rep.ByTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		fmt.Fprintf(w, "  target %-30s %6d\n", t, rep.ByTarget[t])
	}
	fmt.Fprintf(w, "  stream: %d jobs, %d lines, %d trailers\n", rep.StreamJobs, rep.StreamLines, rep.StreamTrailers)
	fmt.Fprintf(w, "  unaccounted: %d (off-taxonomy %d, body errors %d)\n", rep.Unaccounted(), rep.OffTaxonomy, rep.BodyErrors)
	for _, f := range rep.Failures {
		fmt.Fprintf(w, "  ! %s\n", f)
	}
}
