package main

// e26.go — E26: Karp–Luby (ε,δ) approximation on the #P-hard cells.
//
// The experiment demonstrates the approx mode's reason to exist: hard
// cells beyond the exact baselines' horizon, where exact evaluation
// refuses, are answered by the seeded Karp–Luby estimator at a cost
// that scales with the Dyer sample count instead of 2^edges.
//
// Phases:
//
//   - calibration: on a hard instance small enough for the brute-force
//     oracle, the estimate is checked against the exact answer across
//     64 fixed seeds — the empirical failure rate of |p̂ − p| ≤ ε·p
//     must stay within the δ budget plus binomial slack (the
//     solver-level statistical suite in internal/core runs the same
//     check with more seeds; here it gates the perf record).
//   - horizon needles: a doubling sweep of hard instances whose
//     uncertain-edge count is far past DefaultBruteForceLimit. Exact
//     mode with the fallback disabled refuses each needle with the
//     typed intractable error and the world enumeration refuses with
//     the typed limit error, while approx answers with statistical
//     bounds — and a same-seed twin run reproduces the estimate
//     byte-for-byte (the determinism contract the serving tier's
//     response caching relies on).

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"phom/internal/core"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/phomerr"
)

// hardInstance builds a connected cyclic unlabeled instance (no
// tractable cell applies to any query on it) with every edge uncertain
// at a random probability k/16 ∈ (0,1).
func (e *E) hardInstance(n, extra int) *graph.ProbGraph {
	g := gen.RandConnected(e.r, n, extra, nil)
	if g.InClass(graph.ClassUPT) || g.InClass(graph.ClassU2WP) || g.InClass(graph.ClassUDWT) {
		e.fatalf("hard instance (n=%d) accidentally fell in a tractable class", n)
	}
	h := graph.NewProbGraph(g)
	for i := 0; i < g.NumEdges(); i++ {
		e.check(h.SetProb(i, big.NewRat(int64(1+e.r.Intn(15)), 16)))
	}
	return h
}

func runApproxHardCells(e *E) {
	q := graph.UnlabeledPath(3)

	// Phase one: calibration against the brute-force oracle. 18 edges
	// stay under DefaultBruteForceLimit, so exact mode still answers.
	const seeds = 64
	const eps, delta = 0.3, 0.2
	h := e.hardInstance(10, 8)
	exact, err := core.Solve(q, h, nil)
	e.check(err)
	exactF, _ := exact.Prob.Float64()
	cp, err := core.Compile(q, h, nil)
	e.check(err)
	failures, samples := 0, int64(0)
	start := time.Now()
	for seed := uint64(0); seed < seeds; seed++ {
		res, err := cp.EvaluateOpts(h.Probs(),
			&core.Options{Precision: core.PrecisionApprox, Epsilon: eps, Delta: delta, Seed: seed})
		e.check(err)
		samples += res.ApproxSamples
		p, _ := res.Prob.Float64()
		if diff := p - exactF; diff > eps*exactF || diff < -eps*exactF {
			failures++
		}
	}
	d := time.Since(start)
	// failures ~ Bin(64, q) with q ≤ δ: more than δ·N + 4·√(δ(1−δ)N)
	// ≈ 25 would put the true failure rate above δ.
	if failures > 25 {
		e.fatalf("calibration: %d/%d runs outside ε·p (ε=%v, δ=%v)", failures, seeds, eps, delta)
	}
	m := metric(fmt.Sprintf("calibration edges=%d seeds=%d", h.G.NumEdges(), seeds),
		fmt.Sprintf("fail=%d/%d (δ=%v) samples=%d", failures, seeds, delta, samples), d)
	m.OpsPerSec = float64(samples) / d.Seconds()
	e.emit(m)

	// Phase two: needles beyond the brute-force horizon.
	for _, n := range []int{24, 48, 96} {
		h := e.hardInstance(n, n/2)
		uncertain := len(h.UncertainEdges())
		if uncertain <= core.DefaultBruteForceLimit {
			e.fatalf("needle n=%d has only %d uncertain edges — not past the horizon", n, uncertain)
		}
		// Exact refuses: the world enumeration by its limit, the full
		// exact mode (fallback disabled) with the pinned typed error.
		if _, err := core.BruteForceLimit(q, h, core.DefaultBruteForceLimit); !errors.Is(err, phomerr.ErrLimit) {
			e.fatalf("needle n=%d: brute force at the default limit returned %v, want ErrLimit", n, err)
		}
		if _, err := core.Solve(q, h, &core.Options{DisableFallback: true}); !errors.Is(err, phomerr.ErrIntractable) {
			e.fatalf("needle n=%d: exact solve refused with %v, want ErrIntractable", n, err)
		}
		// Approx answers, seeded.
		opts := &core.Options{Precision: core.PrecisionApprox, Epsilon: 0.2, Delta: 0.1, Seed: uint64(*seed)}
		start := time.Now()
		res, err := core.Solve(q, h, opts)
		e.check(err)
		d := time.Since(start)
		if res.Precision != core.PrecisionApprox || res.Method != core.MethodKarpLuby {
			e.fatalf("needle n=%d served precision %v method %v", n, res.Precision, res.Method)
		}
		p, _ := res.Prob.Float64()
		if res.Bounds == nil || p < res.Bounds.Lo || p > res.Bounds.Hi || res.Bounds.Lo < 0 || res.Bounds.Hi > 1 {
			e.fatalf("needle n=%d: estimate %v outside bounds %+v", n, p, res.Bounds)
		}
		if res.ApproxSamples <= 0 {
			e.fatalf("needle n=%d drew %d samples", n, res.ApproxSamples)
		}
		// Same-seed twin: byte-identical estimate.
		twin, err := core.Solve(q, h, opts)
		e.check(err)
		if twin.Prob.Cmp(res.Prob) != 0 || *twin.Bounds != *res.Bounds || twin.ApproxSamples != res.ApproxSamples {
			e.fatalf("needle n=%d: same-seed twin diverged", n)
		}
		m := metric(fmt.Sprintf("needle edges=%d (horizon %d)", uncertain, core.DefaultBruteForceLimit),
			fmt.Sprintf("p=%.4f±%.4f samples=%d twin=equal", p, (res.Bounds.Hi-res.Bounds.Lo)/2, res.ApproxSamples), d)
		m.OpsPerSec = float64(res.ApproxSamples) / d.Seconds()
		e.emit(m)
	}
}
