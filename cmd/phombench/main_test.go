package main

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"phom/internal/benchrec"
)

// withBenchFlags shrinks the workload flags for test speed and restores
// them afterwards.
func withBenchFlags(t *testing.T) {
	t.Helper()
	oldMaxN, oldRW, oldBJ := *maxN, *reweights, *batchJobs
	*maxN, *reweights, *batchJobs = 256, 8, 16
	t.Cleanup(func() { *maxN, *reweights, *batchJobs = oldMaxN, oldRW, oldBJ })
}

// recordExperiment runs one registered experiment into a fresh recorder
// and returns its run.
func recordExperiment(t *testing.T, id string) *benchrec.Run {
	t.Helper()
	for _, def := range experiments() {
		if def.id != id {
			continue
		}
		rec := benchrec.NewRecorder(*seed, map[string]string{"maxn": "256"})
		rec.Begin(def.id, def.title)
		metrics := 0
		e := &E{id: def.id, r: rand.New(rand.NewSource(*seed)), rec: rec, metrics: &metrics}
		if err := runOne(def.fn, e); err != nil {
			t.Fatalf("%s failed: %v", id, err)
		}
		return rec.Runs()[0]
	}
	t.Fatalf("experiment %s not registered", id)
	return nil
}

// TestBenchRecordsDeterministic: the acceptance bar for the perf
// trajectory — two seeded runs of E20–E26 must produce byte-identical
// records once the volatile fields are normalized. E19 is excluded by
// design: its cache-hit/coalesce split is scheduling-dependent and its
// record only carries the stable dedup counter, but its wall-clock
// ordering is not worth pinning here.
func TestBenchRecordsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiment workloads")
	}
	withBenchFlags(t)
	for _, id := range []string{"E20", "E21", "E22", "E23", "E24", "E25", "E26"} {
		a := recordExperiment(t, id)
		b := recordExperiment(t, id)
		benchrec.Normalize(a)
		benchrec.Normalize(b)
		var ba, bb bytes.Buffer
		if err := benchrec.Encode(&ba, a); err != nil {
			t.Fatal(err)
		}
		if err := benchrec.Encode(&bb, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Errorf("%s: two seeded runs differ after normalization:\n--- a\n%s\n--- b\n%s",
				id, ba.Bytes(), bb.Bytes())
		}
	}
}

// TestRunOneIsolatesFailures: a failing assertion must surface as an
// error from runOne (so main can mark the experiment FAILED and exit
// nonzero after the rest have run), never kill the process, and never
// swallow a genuine panic.
func TestRunOneIsolatesFailures(t *testing.T) {
	metrics := 0
	e := &E{id: "EX", r: rand.New(rand.NewSource(1)),
		rec: benchrec.NewRecorder(1, nil), metrics: &metrics}
	e.rec.Begin("EX", "fixture")

	err := runOne(func(e *E) { e.fatalf("boom %d", 7) }, e)
	if err == nil || err.Error() != "boom 7" {
		t.Fatalf("fatalf not converted to error: %v", err)
	}
	sentinel := errors.New("sentinel")
	if err := runOne(func(e *E) { e.check(sentinel) }, e); !errors.Is(err, sentinel) {
		t.Fatalf("check not converted to error: %v", err)
	}
	if err := runOne(func(e *E) {}, e); err != nil {
		t.Fatalf("clean run reported %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-assertion panic was swallowed")
		}
	}()
	_ = runOne(func(e *E) { panic("genuine bug") }, e)
}

// TestExperimentRegistry: ids are unique and E1–E26 are all present —
// the -run filter silently matches nothing otherwise.
func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, def := range experiments() {
		if seen[def.id] {
			t.Errorf("duplicate experiment id %s", def.id)
		}
		seen[def.id] = true
		if def.title == "" || def.fn == nil {
			t.Errorf("experiment %s is missing a title or function", def.id)
		}
	}
	for i := 1; i <= 26; i++ {
		if id := fmt.Sprintf("E%d", i); !seen[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}
