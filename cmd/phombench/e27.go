package main

// e27.go — E27: live-instance delta streams — incremental plan
// maintenance vs from-scratch recompilation.
//
// The experiment drives the PR 10 instance subsystem end to end: one
// named instance (a ⊔2WP union of paths, the Lemma 3.7 composite's
// home turf) absorbs a deterministic stream of delta batches —
// probability drift (structure-preserving: plans survive verbatim and
// the next solve is a pure reweight) interleaved with sparse edge
// removals and re-inserts (structural: the engine migrates the tracked
// plan through core.PatchCompile, recompiling only the components
// incident to the delta and splicing the untouched parts
// copy-on-write). The from-scratch baseline replays the identical
// stream through a bare instance and pays a full core.Solve — dispatch,
// compile, evaluate — at every version.
//
// Hard assertions: every incremental answer is RatString-byte-identical
// to the from-scratch answer at the same version (the PatchCompile
// contract, here checked through the whole engine path); structural
// batches are served by the incremental splice with full recompiles
// below a pinned 1-in-8 fraction (this workload never legitimately
// needs one — the class census and the route are delta-invariant); and
// the incremental path beats the from-scratch path by at least the 3×
// floor. The recorded counters (steps, structural batches, incremental
// vs full recompiles, deltas applied) are pure functions of the seed,
// so the BENCH_E27.json record self-diffs clean.

import (
	"fmt"
	"math/big"
	"time"

	"phom/internal/core"
	"phom/internal/engine"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/instance"
)

// e27Stream pre-generates the delta stream by replaying it against a
// scratch instance (batch validity depends on the evolving edge set).
// Every 4th batch is structural — an edge removal, whose re-insert
// (same endpoints, label and probability) is the next structural batch,
// so the instance never drifts out of ⊔2WP; the rest are probability
// drift. Returns the batches and the number of structural ones.
func (e *E) e27Stream(h *graph.ProbGraph, steps int) ([][]instance.Delta, int) {
	scratch, err := instance.New("scratch", h)
	e.check(err)
	stream := make([][]instance.Delta, 0, steps)
	structural := 0
	var pending *instance.Delta
	for len(stream) < steps {
		snap := scratch.Snapshot()
		var batch []instance.Delta
		if len(stream)%4 == 3 {
			structural++
			if pending != nil {
				batch = []instance.Delta{*pending}
				pending = nil
			} else {
				i := e.r.Intn(snap.H.G.NumEdges())
				ed := snap.H.G.Edge(i)
				batch = []instance.Delta{{Op: instance.OpRemoveEdge, From: ed.From, To: ed.To}}
				pending = &instance.Delta{
					Op: instance.OpAddEdge, From: ed.From, To: ed.To,
					Label: ed.Label, Prob: new(big.Rat).Set(snap.H.Prob(i)),
				}
			}
		} else {
			for j := 1 + e.r.Intn(3); j > 0; j-- {
				i := e.r.Intn(snap.H.G.NumEdges())
				ed := snap.H.G.Edge(i)
				batch = append(batch, instance.Delta{
					Op: instance.OpSetProb, From: ed.From, To: ed.To,
					Prob: big.NewRat(int64(e.r.Intn(17)), 16),
				})
			}
		}
		if _, err := scratch.Apply(-1, batch); err != nil {
			e.fatalf("pre-generating delta stream: %v", err)
		}
		stream = append(stream, batch)
	}
	return stream, structural
}

func runDeltaStream(e *E) {
	r := e.r
	rs := []graph.Label{"R", "S"}
	n := *maxN / 4
	if n < 256 {
		n = 256
	}
	// A cyclic connected query (never 1WP) on a ⊔2WP instance: the one
	// applicable route is Prop 4.11, and the compiled plan is the
	// Lemma 3.7 Components composite PatchCompile splices into.
	q := gen.RandConnected(r, 5, 1, rs)
	g := gen.RandInClass(r, graph.ClassU2WP, n, rs)
	if len(g.ConnectedComponents()) < 2 {
		e.fatalf("⊔2WP instance came out connected — no composite to maintain")
	}
	h := gen.RandProb(r, g, 0.5)
	steps := 2 * (*reweights)
	stream, structural := e.e27Stream(h, steps)
	opts := &core.Options{DisableFallback: true}

	var deltas int64
	for _, batch := range stream {
		deltas += int64(len(batch))
	}
	mBuild := metric(fmt.Sprintf("⊔2WP n=%d stream", n),
		fmt.Sprintf("steps=%d", steps), 0)
	mBuild.Counters = map[string]int64{
		"components": int64(len(g.ConnectedComponents())),
		"edges":      int64(g.NumEdges()),
		"structural": int64(structural),
		"deltas":     deltas,
	}
	e.emit(mBuild)

	// From-scratch baseline: replay the stream on a bare instance and
	// solve every version cold — full dispatch + compile + evaluate.
	base, err := instance.New("baseline", h)
	e.check(err)
	full := make([]string, steps)
	start := time.Now()
	for i, batch := range stream {
		if _, err := base.Apply(-1, batch); err != nil {
			e.fatalf("baseline apply %d: %v", i, err)
		}
		res, err := core.Solve(q, base.Snapshot().H, opts)
		e.check(err)
		full[i] = res.Prob.RatString()
	}
	dFull := time.Since(start)
	mFull := metric(fmt.Sprintf("from-scratch x%d", steps), "baseline", dFull)
	mFull.OpsPerSec = float64(steps) / dFull.Seconds()
	e.emit(mFull)

	// Incremental: the same stream through the engine's instance
	// registry. Drift batches leave the cached plan valid (zero
	// recompilation — the next solve reweights); structural batches
	// migrate it through PatchCompile inside ApplyDelta.
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	_, err = eng.CreateInstance("e27", h)
	e.check(err)
	solve := func() string {
		job, _, err := eng.InstanceJob("e27", engine.Job{Query: q, Opts: opts})
		e.check(err)
		res := eng.Do(job)
		e.check(res.Err)
		return res.Result.Prob.RatString()
	}
	solve() // warm: the one shared cold compile stays out of the loop
	incr := make([]string, steps)
	start = time.Now()
	for i, batch := range stream {
		if _, err := eng.ApplyDelta("e27", -1, batch); err != nil {
			e.fatalf("incremental apply %d: %v", i, err)
		}
		incr[i] = solve()
	}
	dIncr := time.Since(start)
	st := eng.Stats()

	for i := range stream {
		if incr[i] != full[i] {
			e.fatalf("step %d: incremental answer %s differs from from-scratch %s",
				i, incr[i], full[i])
		}
	}
	if in, ok := eng.Instance("e27"); !ok || in.Version() != uint64(1+steps) {
		e.fatalf("instance ended at the wrong version (want %d)", 1+steps)
	}
	if st.IncrementalRecompiles == 0 {
		e.fatalf("no structural batch took the incremental splice")
	}
	if 8*st.FullRecompiles > uint64(structural) {
		e.fatalf("full recompiles %d above the pinned 1/8 of %d structural batches",
			st.FullRecompiles, structural)
	}
	mIncr := metric(fmt.Sprintf("incremental x%d", steps), "match=true", dIncr)
	mIncr.Counters = map[string]int64{
		"incremental_recompiles": int64(st.IncrementalRecompiles),
		"full_recompiles":        int64(st.FullRecompiles),
		"deltas_applied":         int64(st.DeltasApplied),
	}
	mIncr.OpsPerSec = float64(steps) / dIncr.Seconds()
	mIncr.Speedup = float64(dFull) / float64(dIncr)
	e.emit(mIncr)
	if mIncr.Speedup < 3 {
		e.fatalf("incremental path only %.2fx over from-scratch, below the 3x floor", mIncr.Speedup)
	}
}
