package main

// e25.go — E25: the sharded serving tier (phomgate) end to end.
//
// The experiment measures what ROADMAP item 2 claims: sharding jobs by
// structure key multiplies the per-process plan cache instead of
// diluting it. Every replica runs with the same per-process resource
// ceiling — one engine worker and a fixed plan-cache budget smaller
// than the workload's structure set — exactly the regime where a single
// phomserve thrashes: with S structures cycling round-robin through an
// LRU of K < S plans, every request evicts before it can hit, so the
// single process pays a fresh compile per request forever. A gate over
// four replicas consistent-hashes the same S structures into slices of
// about S/4 ≤ K, so after one warm pass every replica serves its whole
// slice as plan hits and the steady-state compile count is zero. The
// compile/evaluate asymmetry (E20) turns that cache effect into
// aggregate throughput — which is why the ≥2x floor below holds even
// on a single-core host, where a parallelism-only tier could never
// beat one process.
//
// Phases, all over the same seeded workload (S structures, a
// 2WP-heavy mix with DWT cells interleaved, fast precision with the
// certified float64 kernel — the regime where a compile costs many
// times an evaluation, as in E24):
//
//   - aggregate reweight: multi-vector /reweight (probs_batch) requests
//     round-robin over the structures, fired at a direct single
//     backend, then through the gate at 1, 2 and 4 replicas. Answers
//     must be byte-identical across all tiers; the timed-phase compile
//     counts must show the mechanism (direct: one compile per request;
//     4 replicas: zero); the 4-replica speedup has a hard 2x floor.
//   - mixed stream batch: /batch?stream=1 batches mixing solves across
//     the structure set, stream-merged by the gate. Verifies one line
//     per job and one trailer at every tier and that multi-replica
//     tiers actually fan batches out across shards.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"phom/internal/engine"
	"phom/internal/gateway"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/serve"
)

// e25Workload is the seeded request material shared by every tier.
type e25Workload struct {
	n          int
	structures []e25Structure
	reweights  [][]byte   // R prebuilt probs_batch bodies, round-robin over structures
	vectors    int        // probability vectors per reweight request
	batches    [][]byte   // prebuilt stream-batch bodies
	batchJobs  int        // jobs per batch
	warm       [][]byte   // one single-vector reweight per structure
	expect     [][]string // baseline probs per reweight request (filled by the direct tier)
}

type e25Structure struct {
	queryText string
	instText  string
	edges     []graph.Edge
}

const (
	e25Structures = 32
	// e25PlanCache is each process's plan-cache budget: above a
	// 4-replica shard slice even under ring skew (fair share ~8 of 32
	// structures, observed worst case 16), below the full set — the
	// "per-process ceiling" every tier gets one unit of.
	e25PlanCache   = 20
	e25Concurrency = 16
)

// e25Opts pins every request to the certified fast path: the workload
// measures serving-tier dispatch and plan-cache economics, so per-lane
// arithmetic is the cheap float64 kernel, as in E24.
var e25Opts = map[string]any{"precision": "fast", "disable_fallback": true}

func e25Text(p *graph.ProbGraph) string {
	var buf bytes.Buffer
	_ = graphio.WriteProbGraph(&buf, p)
	return buf.String()
}

func buildE25Workload(e *E) *e25Workload {
	r := e.r
	n := *maxN / 16
	if n < 40 {
		n = 40
	}
	if n > 192 {
		n = 192
	}
	w := &e25Workload{n: n, vectors: 4, batchJobs: 8}
	one := []graph.Label{"R"}
	un := []graph.Label{graph.Unlabeled}
	q2wp := graph.Path2WP(graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R"))
	qdwt := graph.UnlabeledPath(3)
	for s := 0; s < e25Structures; s++ {
		var q *graph.Graph
		var inst *graph.ProbGraph
		if s%4 != 3 {
			q = q2wp
			inst = gen.RandProb(r, gen.RandInClass(r, graph.Class2WP, n, one), 0.5)
		} else {
			q = qdwt
			inst = gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)
		}
		var qb bytes.Buffer
		e.check(graphio.WriteGraph(&qb, q))
		w.structures = append(w.structures, e25Structure{
			queryText: qb.String(),
			instText:  e25Text(inst),
			edges:     inst.G.Edges(),
		})
	}
	probsVec := func(st e25Structure) map[string]string {
		vec := map[string]string{}
		for i := 0; i < 3; i++ {
			ed := st.edges[r.Intn(len(st.edges))]
			vec[fmt.Sprintf("%d>%d", ed.From, ed.To)] = fmt.Sprintf("%d/17", 1+r.Intn(16))
		}
		return vec
	}
	rounds := 1 + *reweights/16
	if rounds < 2 {
		rounds = 2
	}
	requests := e25Structures * rounds
	for i := 0; i < requests; i++ {
		st := w.structures[i%e25Structures]
		vecs := make([]map[string]string, w.vectors)
		for v := range vecs {
			vecs[v] = probsVec(st)
		}
		body, err := json.Marshal(map[string]any{
			"query_text": st.queryText, "instance_text": st.instText, "probs_batch": vecs,
			"options": e25Opts,
		})
		e.check(err)
		w.reweights = append(w.reweights, body)
	}
	for s, st := range w.structures {
		body, err := json.Marshal(map[string]any{
			"query_text": st.queryText, "instance_text": st.instText,
			"probs_batch": []map[string]string{probsVec(w.structures[s])},
			"options":     e25Opts,
		})
		e.check(err)
		w.warm = append(w.warm, body)
	}
	for b := 0; b < requests/4; b++ {
		jobs := make([]map[string]any, w.batchJobs)
		for j := range jobs {
			st := w.structures[(b*w.batchJobs+j)%e25Structures]
			jobs[j] = map[string]any{"query_text": st.queryText, "instance_text": st.instText, "options": e25Opts}
		}
		body, err := json.Marshal(map[string]any{"jobs": jobs})
		e.check(err)
		w.batches = append(w.batches, body)
	}
	return w
}

// e25Tier is one deployment under test: replicas plus (optionally) a
// gate in front.
type e25Tier struct {
	name    string
	base    string
	engines []*engine.Engine
	gate    *gateway.Gateway
	gateURL string
	closers []func()
}

func startE25Tier(e *E, name string, replicas int, withGate bool) *e25Tier {
	t := &e25Tier{name: name}
	urls := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		eng := engine.New(engine.Options{Workers: 1, CacheSize: -1, PlanCacheSize: e25PlanCache})
		srv := httptest.NewServer(serve.New(eng).Handler())
		t.engines = append(t.engines, eng)
		t.closers = append(t.closers, srv.Close, func() { _ = eng.Close() })
		urls[i] = srv.URL
	}
	t.base = urls[0]
	if withGate {
		g, err := gateway.New(gateway.Config{Backends: urls})
		e.check(err)
		gsrv := httptest.NewServer(g.Handler())
		t.closers = append(t.closers, gsrv.Close, g.Close)
		t.base, t.gate, t.gateURL = gsrv.URL, g, gsrv.URL
	}
	return t
}

func (t *e25Tier) close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
}

func (t *e25Tier) planCompiles() uint64 {
	var n uint64
	for _, eng := range t.engines {
		n += eng.Stats().PlanCompiles
	}
	return n
}

// e25Client is a pooled keep-alive client sized for the firing pool.
func e25Client() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * e25Concurrency,
		MaxIdleConnsPerHost: e25Concurrency,
	}}
}

// fireReweights posts every prebuilt reweight body with a bounded
// worker pool and returns the wall-clock and the per-request prob
// strings (in request order).
func fireReweights(e *E, client *http.Client, base string, bodies [][]byte) (time.Duration, [][]string) {
	out := make([][]string, len(bodies))
	errs := make(chan error, e25Concurrency)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < e25Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				resp, err := client.Post(base+"/reweight", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs <- err
					return
				}
				var rr struct {
					Results []struct {
						ProbFloat *float64 `json:"prob_float"`
						Err       string   `json:"error"`
					} `json:"results"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil {
					errs <- fmt.Errorf("reweight %d: status %d (%v)", i, resp.StatusCode, derr)
					return
				}
				probs := make([]string, len(rr.Results))
				for v, res := range rr.Results {
					if res.Err != "" || res.ProbFloat == nil {
						errs <- fmt.Errorf("reweight %d vector %d: no prob_float (%s)", i, v, res.Err)
						return
					}
					probs[v] = strconv.FormatFloat(*res.ProbFloat, 'g', -1, 64)
				}
				out[i] = probs
			}
		}()
	}
	for i := range bodies {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		e.check(err)
	}
	return elapsed, out
}

// fireStreams posts every prebuilt batch with ?stream=1, verifying one
// indexed line per job and exactly one trailer per stream.
func fireStreams(e *E, client *http.Client, base string, bodies [][]byte, jobsPer int) time.Duration {
	errs := make(chan error, e25Concurrency)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < e25Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				resp, err := client.Post(base+"/batch?stream=1", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs <- err
					return
				}
				lines, trailers := 0, 0
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 64<<10), 8<<20)
				for sc.Scan() {
					var m struct {
						Done  bool   `json:"done"`
						Index *int   `json:"index"`
						Code  string `json:"code"`
					}
					if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
						errs <- fmt.Errorf("batch %d: bad line: %v", i, err)
						resp.Body.Close()
						return
					}
					switch {
					case m.Done:
						trailers++
					case m.Index != nil:
						if m.Code != "" {
							errs <- fmt.Errorf("batch %d job %d: error code %q", i, *m.Index, m.Code)
							resp.Body.Close()
							return
						}
						lines++
					}
				}
				scanErr := sc.Err()
				resp.Body.Close()
				if scanErr != nil || resp.StatusCode != http.StatusOK || lines != jobsPer || trailers != 1 {
					errs <- fmt.Errorf("batch %d: status %d, %d lines for %d jobs, %d trailers (%v)",
						i, resp.StatusCode, lines, jobsPer, trailers, scanErr)
					return
				}
			}
		}()
	}
	for i := range bodies {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		e.check(err)
	}
	return elapsed
}

func (t *e25Tier) crossShardBatches(e *E) uint64 {
	if t.gate == nil {
		return 0
	}
	resp, err := http.Get(t.gateURL + "/healthz")
	e.check(err)
	var h gateway.Health
	derr := json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	e.check(derr)
	return h.CrossShardBatches
}

// runGateTier covers E25.
func runGateTier(e *E) {
	w := buildE25Workload(e)
	client := e25Client()
	tiers := []struct {
		name     string
		replicas int
		gate     bool
	}{
		{"direct replicas=1", 1, false},
		{"gate replicas=1", 1, true},
		{"gate replicas=2", 2, true},
		{"gate replicas=4", 4, true},
	}
	var d1 time.Duration
	var s1 time.Duration
	for ti, spec := range tiers {
		tier := startE25Tier(e, spec.name, spec.replicas, spec.gate)

		// Warm pass: compile each structure once wherever the ring puts
		// it. Steady state, not compile cost, is what the tiers are
		// being compared on — and a thrashing cache shows up precisely
		// as steady-state compiles.
		_, _ = fireReweights(e, client, tier.base, w.warm)
		warmCompiles := tier.planCompiles()

		d, got := fireReweights(e, client, tier.base, w.reweights)
		timedCompiles := tier.planCompiles() - warmCompiles
		if ti == 0 {
			w.expect = got
		} else {
			for i := range got {
				for v := range got[i] {
					if got[i][v] != w.expect[i][v] {
						e.fatalf("%s: request %d vector %d answered %s, direct baseline %s",
							spec.name, i, v, got[i][v], w.expect[i][v])
					}
				}
			}
		}
		// The mechanism, pinned: a single process over S structures with
		// a K<S plan cache recompiles on essentially every request
		// (concurrent arrival reordering lets the odd request sneak a
		// hit, so ≥80% rather than exactly all), while four shard
		// slices fit their caches and never compile again.
		if spec.replicas == 1 && timedCompiles*10 < uint64(len(w.reweights))*8 {
			e.fatalf("%s: only %d timed compiles for %d requests (the per-process cache must thrash)",
				spec.name, timedCompiles, len(w.reweights))
		}
		if spec.replicas == 4 && timedCompiles != 0 {
			e.fatalf("%s: %d steady-state compiles, want 0 (shard slices must fit the per-process cache)",
				spec.name, timedCompiles)
		}

		m := metric(fmt.Sprintf("reweight %s", spec.name),
			fmt.Sprintf("structures=%d requests=%d vectors=%d n=%d", e25Structures, len(w.reweights), w.vectors, w.n), d)
		m.OpsPerSec = float64(len(w.reweights)*w.vectors) / d.Seconds()
		if spec.replicas == 4 {
			m.Counters = map[string]int64{"timed_plan_compiles": int64(timedCompiles)}
		}
		if ti == 0 {
			d1 = d
		} else {
			m.Speedup = float64(d1) / float64(d)
			// The hard floor applies at full scale, where a compile
			// costs many times a request's parse+evaluate overhead (2WP
			// compilation is superlinear — see E20). At smoke scale
			// (-maxn ≤ 2560 → n < 160) compiles shrink toward the fixed
			// costs and the tier only records the ratio.
			if spec.replicas == 4 && w.n >= 160 && m.Speedup < 2 {
				e.fatalf("4-replica aggregate reweight speedup %.2fx below the 2x floor", m.Speedup)
			}
		}
		e.emit(m)

		sd := fireStreams(e, client, tier.base, w.batches, w.batchJobs)
		cross := tier.crossShardBatches(e)
		if spec.replicas > 1 && cross == 0 {
			e.fatalf("%s: no stream batch crossed shards", spec.name)
		}
		sm := metric(fmt.Sprintf("mixed stream batch %s", spec.name),
			fmt.Sprintf("batches=%d jobs=%d", len(w.batches), w.batchJobs), sd)
		sm.OpsPerSec = float64(len(w.batches)*w.batchJobs) / sd.Seconds()
		if spec.gate {
			sm.Counters = map[string]int64{"cross_shard_batches": int64(cross)}
		}
		if ti == 0 {
			s1 = sd
		} else {
			sm.Speedup = float64(s1) / float64(sd)
		}
		e.emit(sm)

		tier.close()
	}

	// Sanity anchor: the fast path's certified answers are genuine
	// probabilities.
	for _, probs := range w.expect[:1] {
		for _, p := range probs {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil || f < 0 || f > 1 {
				e.fatalf("baseline prob %q is not a probability", p)
			}
		}
	}
}
