// Command phombench is the experiment harness: for every table and
// figure of the paper it regenerates the corresponding artifact
// empirically (see EXPERIMENTS.md for the index E1–E27). For PTIME
// cells it measures runtime scaling of the dispatched algorithm over
// growing instances; for #P-hard cells it executes the paper's
// reduction, checks the exact counting identity, and measures the
// exponential growth of the exact baseline. E19 drives the concurrent
// engine of internal/engine over a mixed batch workload and measures
// the speedup over sequential solving; E20 measures the
// compile/evaluate split of the solver plans (internal/plan); E21
// measures the flattened evaluation IR and warm-start snapshot serving;
// E22 measures the dual-precision substrates (certified float64
// interval kernel vs exact big.Rat); E23 runs the phomgen workload
// families (Erdős–Rényi, Barabási–Albert, power-law) across the
// dispatch lattice: class membership, graphio round-trips, verdict
// census, and needle-query throughput through the public request API;
// E24 measures end-to-end reweight throughput against batch width
// (1/8/64/256) through the engine's vectorized same-structure batching;
// E25 runs the sharded serving tier end to end: a phomgate over 1/2/4
// in-process phomserve replicas against one process, with the
// per-process plan cache as the resource replication multiplies; E26
// runs the Karp–Luby (ε,δ) estimator on #P-hard cells: calibration
// against the brute-force oracle across fixed seeds, then needles
// beyond the brute-force horizon where exact evaluation refuses and the
// seeded sampler answers with statistical bounds, byte-reproducibly;
// E27 streams typed deltas into a live named instance
// (internal/instance through the engine registry) and measures
// incremental plan maintenance — probability drift reweights without
// recompiling, sparse edge deltas splice through core.PatchCompile —
// against from-scratch recompilation at every version, asserting
// byte-identical answers throughout.
//
// Experiments are selected with -run, an unanchored regular expression
// over experiment ids (like go test -run): -run 'E2[0-7]' runs
// E20–E27. Every experiment embeds correctness assertions; a failing
// assertion marks that experiment FAILED and the process exits nonzero
// after all selected experiments have run.
//
// Results are printed as aligned tables; -csv emits machine-readable
// rows, and -json DIR persists one schema-versioned
// BENCH_<experiment>.json per experiment (see internal/benchrec): the
// machine-readable perf trajectory. Two runs with the same seed and
// flags produce byte-identical JSON up to the volatile fields
// (timestamp, go version, timings). -diff compares two such files
// metric by metric.
//
// Usage:
//
//	phombench [-run 'E2[0-7]'] [-seed 1] [-maxn 4096] [-csv]
//	          [-json out/] [-workers 0] [-batchjobs 128] [-reweights 64]
//	phombench -diff out/BENCH_E20.json old/BENCH_E20.json
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"

	"phom"
	"phom/internal/benchrec"
	"phom/internal/core"
	"phom/internal/counting"
	"phom/internal/engine"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/graphio"
	"phom/internal/phomerr"
	"phom/internal/plan"
	"phom/internal/reductions"
)

var (
	runFilter  = flag.String("run", "", "run only experiments whose id matches this regexp (unanchored, like go test -run)")
	experiment = flag.String("experiment", "", "deprecated: run a single experiment by exact id (use -run)")
	seed       = flag.Int64("seed", 1, "random seed")
	maxN       = flag.Int("maxn", 4096, "largest instance size for scaling sweeps")
	csvOut     = flag.Bool("csv", false, "emit CSV rows instead of aligned text")
	jsonDir    = flag.String("json", "", "write one BENCH_<experiment>.json per experiment into this directory")
	diffMode   = flag.Bool("diff", false, "compare two BENCH_*.json files: phombench -diff a.json b.json")
	workers    = flag.Int("workers", 0, "E19: fixed engine worker count (0 = sweep 1, 2, 4, NumCPU)")
	batchJobs  = flag.Int("batchjobs", 128, "E19: number of jobs in the engine batch workload")
	reweights  = flag.Int("reweights", 64, "E20–E25: reweighted evaluations per compiled plan")
)

// E is the per-experiment context handed to every experiment function:
// a fresh seeded rand (so each experiment's workload is independent of
// which other experiments ran), the shared recorder, and the assertion
// helpers. A failed assertion panics a benchFailure, which the runner
// recovers: the experiment is marked FAILED, the remaining experiments
// still run, and the process exits nonzero at the end.
type E struct {
	id      string
	r       *rand.Rand
	rec     *benchrec.Recorder
	metrics *int
}

type benchFailure struct{ err error }

func (e *E) fatalf(format string, args ...any) {
	panic(benchFailure{fmt.Errorf(format, args...)})
}

func (e *E) check(err error) {
	if err != nil {
		panic(benchFailure{err})
	}
}

// emit records one metric in the experiment's JSON run and prints the
// human-readable line. Metric.Value and Metric.Counters must be stable
// (pure functions of seed and flags); timings go in the volatile
// ElapsedUS/OpsPerSec/Speedup fields.
func (e *E) emit(m benchrec.Metric) {
	e.rec.Add(e.id, m)
	*e.metrics++
	text := m.Value
	if len(m.Counters) > 0 {
		keys := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if text != "" {
				text += " "
			}
			text += fmt.Sprintf("%s=%d", k, m.Counters[k])
		}
	}
	if m.Speedup > 0 {
		text += fmt.Sprintf(" ×%.2f", m.Speedup)
	}
	if m.OpsPerSec > 0 {
		text += fmt.Sprintf(" %.0f/s", m.OpsPerSec)
	}
	elapsed := time.Duration(m.ElapsedUS) * time.Microsecond
	if *csvOut {
		fmt.Printf("%s,%s,%s,%d\n", e.id, m.Name, text, m.ElapsedUS)
	} else {
		fmt.Printf("  %-34s %-28s %12s\n", m.Name, text, elapsed.Round(time.Microsecond))
	}
}

// metric builds a Metric with the elapsed time filled in.
func metric(name, value string, d time.Duration) benchrec.Metric {
	return benchrec.Metric{Name: name, Value: value, ElapsedUS: d.Microseconds()}
}

type experimentDef struct {
	id, title string
	fn        func(*E)
}

func experiments() []experimentDef {
	defs := []experimentDef{
		{"E1", "Table 1 (unlabeled, disconnected queries)", tableExp(tableSpecs[0])},
		{"E2", "Table 2 (labeled, connected queries)", tableExp(tableSpecs[1])},
		{"E3", "Table 3 (unlabeled, connected queries)", tableExp(tableSpecs[2])},
		{"E4", "Figure 1 + Example 2.2 (Pr = 0.574)", runExample22},
		{"E5", "Figure 2 (class inclusion lattice)", runLattice},
		{"E6", "Figures 3/4 (class examples)", runShapes},
		{"E7", "Figure 5 + Prop 3.3 (#Bipartite-Edge-Cover reduction)", runEdgeCover},
		{"E8", "Figure 6 (graded DAG levels)", runGradedDAGs},
		{"E9", "Figure 7 + Prop 4.1 (#PP2DNF labeled reduction)", func(e *E) { runPP2DNF(e, reductions.PP2DNFLabeled) }},
		{"E10", "Figure 8 + Prop 5.6 (#PP2DNF unlabeled reduction)", func(e *E) { runPP2DNF(e, reductions.PP2DNFUnlabeled) }},
		{"E11", "Prop 3.4 (label simulation by two-wayness)", runLabelSimulation},
	}
	for _, s := range scalingSpecs {
		defs = append(defs, experimentDef{s.id, s.name + " — runtime scaling", scalingExp(s)})
	}
	defs = append(defs,
		experimentDef{"E18", "Ablations (d-DNNF vs direct DP; baselines)", runAblations},
		experimentDef{"E19", "Engine batch throughput (workers, dedup, memoization)", runEngineBatch},
		experimentDef{"E20", "Plan compile/evaluate amortization (structure-keyed reweighting)", runPlanReweight},
		experimentDef{"E21", "Evaluation IR (interpreter throughput, warm-start snapshots)", runPlanSnapshot},
		experimentDef{"E22", "Dual-precision: float64 interval kernel vs exact interpreter", runFloatPath},
		experimentDef{"E23", "phomgen workload families on the dispatch lattice", runWorkloadFamilies},
		experimentDef{"E24", "Vectorized reweight throughput vs batch width", runBatchedReweight},
		experimentDef{"E25", "Sharded serving tier: aggregate throughput vs replicas (phomgate)", runGateTier},
		experimentDef{"E26", "Karp–Luby (ε,δ) approximation on #P-hard cells beyond the exact horizon", runApproxHardCells},
		experimentDef{"E27", "Live-instance delta streams: incremental plan maintenance vs from-scratch", runDeltaStream},
	)
	return defs
}

func main() {
	flag.Parse()
	if *diffMode {
		runDiff(flag.Args())
		return
	}
	pattern := *runFilter
	if pattern == "" && *experiment != "" {
		pattern = "(?i)^" + regexp.QuoteMeta(*experiment) + "$"
	}
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		if re, err = regexp.Compile(pattern); err != nil {
			fmt.Fprintf(os.Stderr, "phombench: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
	}
	if *csvOut {
		fmt.Println("experiment,params,value,elapsed_us")
	}
	rec := benchrec.NewRecorder(*seed, map[string]string{
		"maxn":      strconv.Itoa(*maxN),
		"workers":   strconv.Itoa(*workers),
		"batchjobs": strconv.Itoa(*batchJobs),
		"reweights": strconv.Itoa(*reweights),
	})
	var failed []string
	metrics, ran := 0, 0
	for _, def := range experiments() {
		if re != nil && !re.MatchString(def.id) {
			continue
		}
		ran++
		if !*csvOut {
			fmt.Printf("\n%s — %s\n", def.id, def.title)
		}
		rec.Begin(def.id, def.title)
		e := &E{id: def.id, r: rand.New(rand.NewSource(*seed)), rec: rec, metrics: &metrics}
		if err := runOne(def.fn, e); err != nil {
			failed = append(failed, def.id)
			fmt.Fprintf(os.Stderr, "phombench: %s FAILED: %v\n", def.id, err)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "phombench: no experiments match %q\n", pattern)
	}
	if *jsonDir != "" {
		paths, err := rec.WriteDir(*jsonDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phombench:", err)
			os.Exit(1)
		}
		if !*csvOut {
			fmt.Printf("\nwrote %d BENCH_*.json files to %s\n", len(paths), *jsonDir)
		}
	}
	if !*csvOut {
		fmt.Printf("\n%d measurements.\n", metrics)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "phombench: FAILED experiments: %v\n", failed)
		os.Exit(1)
	}
}

// runOne runs an experiment, converting assertion panics into an error
// so one failing experiment cannot stop the rest.
func runOne(fn func(*E), e *E) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if bf, ok := p.(benchFailure); ok {
				err = bf.err
				return
			}
			panic(p)
		}
	}()
	fn(e)
	return nil
}

func runDiff(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: phombench -diff a.json b.json")
		os.Exit(2)
	}
	a, err := benchrec.Load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "phombench:", err)
		os.Exit(1)
	}
	b, err := benchrec.Load(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "phombench:", err)
		os.Exit(1)
	}
	if err := benchrec.FormatDiff(os.Stdout, a, b); err != nil {
		fmt.Fprintln(os.Stderr, "phombench:", err)
		os.Exit(1)
	}
}

// sizes yields a doubling sweep up to maxN.
func sizes() []int {
	var out []int
	for n := 64; n <= *maxN; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{*maxN}
	}
	return out
}

// timeSolve runs the dispatched solver and fails the experiment if a
// tractable cell is refused.
func (e *E) timeSolve(q *graph.Graph, h *graph.ProbGraph) (time.Duration, *core.Result) {
	start := time.Now()
	res, err := core.Solve(q, h, &core.Options{DisableFallback: true})
	if err != nil {
		e.fatalf("solver refused a tractable cell: %v", err)
	}
	return time.Since(start), res
}

// E1–E3: for each tractable cell of each table, a scaling sweep of the
// PTIME algorithm; for each hard border cell, an exponential sweep of
// the brute-force baseline on reduction outputs.
type tableSpec struct {
	rows    []graph.Class
	cols    []graph.Class
	labeled bool
}

var (
	connClasses = []graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected}
	discClasses = []graph.Class{graph.ClassU1WP, graph.ClassU2WP, graph.ClassUDWT, graph.ClassUPT, graph.ClassAll}
	tableSpecs  = []tableSpec{
		{discClasses, connClasses, false},
		{connClasses, connClasses, true},
		{connClasses, connClasses, false},
	}
)

func tableExp(spec tableSpec) func(*E) {
	return func(e *E) {
		labels := []graph.Label{graph.Unlabeled}
		if spec.labeled {
			labels = []graph.Label{"R", "S"}
		}
		for _, qc := range spec.rows {
			for _, ic := range spec.cols {
				v := core.Predict(qc, ic, spec.labeled)
				cellName := fmt.Sprintf("%v/%v", qc, ic)
				if v.Tractable {
					r := rand.New(rand.NewSource(*seed))
					for _, n := range sizes() {
						q := gen.RandInClass(r, qc, 6, labels)
						h := gen.RandProb(r, gen.RandInClass(r, ic, n, labels), 0.5)
						d, res := e.timeSolve(q, h)
						e.emit(metric(fmt.Sprintf("%s n=%d", cellName, n),
							fmt.Sprintf("PTIME/%v", res.Method), d))
					}
				} else {
					// Exponential baseline on small instances only.
					r := rand.New(rand.NewSource(*seed))
					for k := 8; k <= 14; k += 2 {
						q := gen.RandInClass(r, qc, 4, labels)
						h := gen.RandProb(r, gen.RandInClass(r, ic, k, labels), 0)
						start := time.Now()
						_, err := core.BruteForceLimit(q, h, 0)
						d := time.Since(start)
						val := "#P-hard/brute"
						if err != nil {
							val = "#P-hard/skipped"
						}
						e.emit(metric(fmt.Sprintf("%s k=%d coins", cellName, k), val, d))
					}
				}
			}
		}
	}
}

func runExample22(e *E) {
	q := graph.New(4)
	q.MustAddEdge(0, 1, "R")
	q.MustAddEdge(1, 2, "S")
	q.MustAddEdge(3, 2, "S")
	g := graph.New(4)
	g.MustAddEdge(0, 1, "R")
	g.MustAddEdge(0, 2, "R")
	g.MustAddEdge(1, 2, "R")
	g.MustAddEdge(1, 3, "R")
	g.MustAddEdge(0, 3, "R")
	g.MustAddEdge(2, 3, "S")
	h := graph.NewProbGraph(g)
	h.MustSetEdgeProb(0, 2, graph.Rat("0.1"))
	h.MustSetEdgeProb(1, 2, graph.Rat("0.8"))
	h.MustSetEdgeProb(1, 3, graph.Rat("0.1"))
	h.MustSetEdgeProb(0, 3, graph.Rat("0.05"))
	h.MustSetEdgeProb(2, 3, graph.Rat("0.7"))
	start := time.Now()
	p := core.BruteForce(q, h)
	e.emit(metric("example 2.2", "Pr="+p.RatString(), time.Since(start)))
}

func runLattice(e *E) {
	start := time.Now()
	violations := 0
	for trial := 0; trial < 2000; trial++ {
		g := gen.RandInClass(e.r, graph.AllClasses[e.r.Intn(len(graph.AllClasses))], 1+e.r.Intn(8), []graph.Label{"R", "S"})
		for _, a := range graph.AllClasses {
			for _, b := range graph.AllClasses {
				if graph.ClassIncluded(a, b) && g.InClass(a) && !g.InClass(b) {
					violations++
				}
			}
		}
	}
	e.emit(metric("2000 random graphs × 100 pairs", fmt.Sprintf("violations=%d", violations), time.Since(start)))
	if violations != 0 {
		e.fatalf("lattice inclusion violated %d times", violations)
	}
}

func runShapes(e *E) {
	start := time.Now()
	fig3top := graph.Path1WP("R", "S", "S", "T")
	fig3bot := graph.Path2WP(graph.Fwd("R"), graph.Bwd("S"), graph.Fwd("S"), graph.Bwd("T"), graph.Fwd("R"))
	ok := fig3top.Is1WP() && fig3bot.Is2WP() && !fig3bot.Is1WP()
	e.emit(metric("figure 3 shapes", fmt.Sprintf("recognized=%v", ok), time.Since(start)))
	if !ok {
		e.fatalf("figure 3 shapes misclassified")
	}
}

func runEdgeCover(e *E) {
	for m := 4; m <= 16; m += 4 {
		bg := gen.RandBipartite(e.r, 3, 3, m)
		red, err := reductions.EdgeCoverLabeled(bg)
		e.check(err)
		want, err := bg.CountEdgeCovers()
		e.check(err)
		start := time.Now()
		p := core.BruteForce(red.Query, red.Instance)
		got := red.CountFromProb(p)
		d := time.Since(start)
		if got.Cmp(want) != 0 {
			e.fatalf("edge-cover count mismatch at |E|=%d: got %s want %s", len(bg.Edges), got, want)
		}
		e.emit(metric(fmt.Sprintf("|E|=%d", len(bg.Edges)),
			fmt.Sprintf("#EC=%s match=true", got), d))
	}
}

func runGradedDAGs(e *E) {
	start := time.Now()
	graded, total := 0, 500
	for trial := 0; trial < total; trial++ {
		g := gen.RandGradedDAG(e.r, 10, 20, 4, nil)
		if g.IsGradedDAG() {
			graded++
		}
	}
	e.emit(metric("500 constructed graded DAGs", fmt.Sprintf("graded=%d/%d", graded, total), time.Since(start)))
	if graded != total {
		e.fatalf("%d/%d constructed DAGs are not graded", total-graded, total)
	}
}

func runPP2DNF(e *E, build func(*counting.PP2DNF) (*reductions.Reduction, error)) {
	for n := 2; n <= 5; n++ {
		f := gen.RandPP2DNF(e.r, n, n, n+2)
		red, err := build(f)
		e.check(err)
		want, err := f.CountSatisfying()
		e.check(err)
		start := time.Now()
		p := core.BruteForce(red.Query, red.Instance)
		got := red.CountFromProb(p)
		d := time.Since(start)
		if got.Cmp(want) != 0 {
			e.fatalf("#PP2DNF mismatch at n=%d: got %s want %s", n, got, want)
		}
		e.emit(metric(fmt.Sprintf("n1=n2=%d m=%d", n, len(f.Clauses)),
			fmt.Sprintf("#SAT=%s match=true", got), d))
	}
}

func runLabelSimulation(e *E) {
	for m := 2; m <= 4; m++ {
		bg := gen.RandBipartite(e.r, 2, 2, m)
		red, err := reductions.EdgeCoverUnlabeled(bg)
		e.check(err)
		want, _ := bg.CountEdgeCovers()
		start := time.Now()
		p := core.BruteForce(red.Query, red.Instance)
		got := red.CountFromProb(p)
		if got.Cmp(want) != 0 {
			e.fatalf("unlabeled edge-cover mismatch at |E|=%d", len(bg.Edges))
		}
		e.emit(metric(fmt.Sprintf("|E|=%d unlabeled", len(bg.Edges)),
			fmt.Sprintf("#EC=%s match=true", got), time.Since(start)))
	}
}

// E12–E17: runtime scaling of the tractable propositions.
type scalingSpec struct {
	id, name string
	qc, ic   graph.Class
	labeled  bool
	qSize    int
}

var scalingSpecs = []scalingSpec{
	{"E12", "Prop 3.6 (arbitrary queries on ⊔DWT)", graph.ClassAll, graph.ClassUDWT, false, 8},
	{"E13", "Prop 4.10 (labeled 1WP on DWT)", graph.Class1WP, graph.ClassDWT, true, 5},
	{"E14", "Prop 4.11 (connected on 2WP)", graph.ClassConnected, graph.Class2WP, true, 5},
	{"E15", "Prop 5.4 (unlabeled 1WP on PT)", graph.Class1WP, graph.ClassPT, false, 6},
	{"E16", "Prop 5.5 (DWT queries on PT)", graph.ClassDWT, graph.ClassPT, false, 8},
	{"E17", "Lemma 3.7 (disconnected instances)", graph.Class1WP, graph.ClassUPT, false, 4},
}

func scalingExp(s scalingSpec) func(*E) {
	return func(e *E) {
		labels := []graph.Label{graph.Unlabeled}
		if s.labeled {
			labels = []graph.Label{"R", "S"}
		}
		var prev time.Duration
		for _, n := range sizes() {
			q := gen.RandInClass(e.r, s.qc, s.qSize, labels)
			h := gen.RandProb(e.r, gen.RandInClass(e.r, s.ic, n, labels), 0.5)
			d, res := e.timeSolve(q, h)
			m := metric(fmt.Sprintf("n=%d", n), fmt.Sprintf("%v", res.Method), d)
			if prev > 0 {
				m.Speedup = float64(d) / float64(prev) // step-growth ratio (volatile)
			}
			prev = d
			e.emit(m)
		}
	}
}

func runAblations(e *E) {
	// Brute force vs lineage+Shannon on a sparse-match instance.
	q := gen.Rand1WP(e.r, 4, []graph.Label{"R", "S"})
	h := gen.RandProb(e.r, gen.RandDWT(e.r, 18, []graph.Label{"R", "S"}), 0)
	start := time.Now()
	pb, err := core.BruteForceLimit(q, h, 0)
	e.check(err)
	dBrute := time.Since(start)
	start = time.Now()
	pl, err := core.LineageShannon(q, h, 0)
	e.check(err)
	dLin := time.Since(start)
	if pb.Cmp(pl) != 0 {
		e.fatalf("brute force and lineage disagree: %s vs %s", pb.RatString(), pl.RatString())
	}
	m := metric("brute vs lineage (18 coins)", "agree=true", dBrute+dLin)
	m.Speedup = float64(dBrute) / float64(dLin)
	e.emit(m)
}

// runEngineBatch covers E19: a mixed workload of tractable jobs (with
// duplicates, shuffled) solved sequentially and then through the engine
// at increasing worker counts. Every engine result is checked
// byte-identical to the sequential one. The dedup counter (cache hits +
// coalesced jobs) is stable under the seed; the hit/coalesce split is
// scheduling-dependent and stays out of the JSON record.
func runEngineBatch(e *E) {
	r := e.r
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 16
	if n < 32 {
		n = 32
	}
	var distinct []engine.Job
	for len(distinct)*4 < *batchJobs {
		distinct = append(distinct,
			engine.Job{ // Prop 4.10
				Query:    gen.Rand1WP(r, 5, rs),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5),
			},
			engine.Job{ // Prop 4.11
				Query:    gen.RandConnected(r, 5, 1, rs),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5),
			},
			engine.Job{ // Prop 3.6
				Query:    gen.RandGraph(r, 6, 9, un),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5),
			},
			engine.Job{ // Props 5.4/5.5
				Query:    gen.RandDWT(r, 4, un),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, n/2, un), 0.5),
			},
		)
	}
	jobs := make([]engine.Job, 0, len(distinct)*4)
	for _, j := range distinct {
		jobs = append(jobs, j, j, j, j)
	}
	r.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	if *batchJobs > 0 && len(jobs) > *batchJobs {
		jobs = jobs[:*batchJobs] // honor -batchjobs exactly
	}

	// Sequential baseline.
	seq := make([]*big.Rat, len(jobs))
	start := time.Now()
	for i, j := range jobs {
		res, err := core.Solve(j.Query, j.Instance, nil)
		e.check(err)
		seq[i] = res.Prob
	}
	dSeq := time.Since(start)
	e.emit(metric(fmt.Sprintf("sequential jobs=%d", len(jobs)), "baseline", dSeq))

	sweep := []int{1, 2, 4, runtime.NumCPU()}
	if *workers > 0 {
		sweep = []int{*workers}
	}
	seen := map[int]bool{}
	for _, w := range sweep {
		if seen[w] {
			continue // NumCPU may coincide with a fixed sweep entry
		}
		seen[w] = true
		eng := engine.New(engine.Options{Workers: w})
		start = time.Now()
		out := eng.SolveBatch(jobs)
		d := time.Since(start)
		st := eng.Stats()
		e.check(eng.Close())
		for i := range jobs {
			e.check(out[i].Err)
			if out[i].Result.Prob.Cmp(seq[i]) != 0 {
				e.fatalf("workers=%d: engine result %d differs from sequential", w, i)
			}
		}
		m := metric(fmt.Sprintf("workers=%d jobs=%d", w, len(jobs)), "match=true", d)
		m.Counters = map[string]int64{"dedup": int64(st.CacheHits + st.Coalesced)}
		m.Speedup = float64(dSeq) / float64(d)
		e.emit(m)
	}
}

// reweightWorkloads builds the fixed-structure workloads shared by E20
// and E21.
type reweightWorkload struct {
	name string
	q    *graph.Graph
	h    *graph.ProbGraph
}

// runPlanReweight covers E20: the compile/evaluate amortization of the
// solver plans. For each tractable workload it measures (a) the cold
// path — a full core.Solve per probability assignment, recompiling the
// structure every time; (b) one core.Compile; (c) plan evaluation per
// assignment; and (d) the same reweight stream through the engine,
// where every job after the first hits the structure-keyed plan cache.
// Every plan evaluation is checked byte-identical to its cold solve.
func runPlanReweight(e *E) {
	r := e.r
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 4
	if n < 64 {
		n = 64
	}
	workloads := []reweightWorkload{
		{"2WP (Prop 4.11)", gen.RandConnected(r, 5, 1, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5)},
		{"DWT (Prop 4.10)", gen.Rand1WP(r, 7, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"DWT (Prop 3.6)", gen.RandGradedDAG(r, 8, 12, 3, nil),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
	}
	for _, wl := range workloads {
		// One probability assignment per reweight, over the fixed structure.
		assignments := make([][]*big.Rat, *reweights)
		for i := range assignments {
			probs := make([]*big.Rat, wl.h.G.NumEdges())
			for ei := range probs {
				probs[ei] = big.NewRat(int64(r.Intn(17)), 16)
			}
			assignments[i] = probs
		}
		// Reweighted instances are prebuilt: the measurements below time
		// the solving/serving stack, not test-data construction.
		variants := make([]*graph.ProbGraph, len(assignments))
		for i, probs := range assignments {
			h2 := graph.NewProbGraph(wl.h.G)
			for ei, p := range probs {
				e.check(h2.SetProb(ei, p))
			}
			variants[i] = h2
		}

		// (a) Cold: full solve per assignment.
		cold := make([]*big.Rat, len(assignments))
		start := time.Now()
		for i, h2 := range variants {
			res, err := core.Solve(wl.q, h2, &core.Options{DisableFallback: true})
			e.check(err)
			cold[i] = res.Prob
		}
		dCold := time.Since(start)

		// (b) Compile once.
		start = time.Now()
		cp, err := core.Compile(wl.q, wl.h, &core.Options{DisableFallback: true})
		e.check(err)
		dCompile := time.Since(start)

		// (c) Evaluate per assignment, checking exactness.
		start = time.Now()
		for i, probs := range assignments {
			res, err := cp.Evaluate(probs)
			e.check(err)
			if res.Prob.Cmp(cold[i]) != 0 {
				e.fatalf("%s: plan evaluation %d differs from cold solve", wl.name, i)
			}
		}
		dEval := time.Since(start)

		// (d) The same stream through the engine, plan cache off vs on:
		// both sides pay the serving overhead (canonical hashing, result
		// cache), so the ratio isolates what the plan cache saves.
		runEngine := func(planCacheSize int) (time.Duration, int) {
			eng := engine.New(engine.Options{Workers: 1, PlanCacheSize: planCacheSize})
			defer eng.Close()
			if res := eng.Do(engine.Job{Query: wl.q, Instance: wl.h}); res.Err != nil {
				e.check(res.Err)
			}
			hits := 0
			start := time.Now()
			for _, h2 := range variants {
				res := eng.Do(engine.Job{Query: wl.q, Instance: h2})
				e.check(res.Err)
				if res.PlanHit {
					hits++
				}
			}
			return time.Since(start), hits
		}
		dEngineCold, _ := runEngine(-1)
		dEngineHot, planHits := runEngine(0)

		k := len(assignments)
		e.emit(metric(fmt.Sprintf("%s n=%d compile", wl.name, n), "1 compilation", dCompile))
		e.emit(metric(fmt.Sprintf("%s n=%d cold x%d", wl.name, n, k), "baseline", dCold))
		mEval := metric(fmt.Sprintf("%s n=%d eval x%d", wl.name, n, k), "match=true", dEval)
		mEval.Speedup = float64(dCold) / float64(dEval)
		e.emit(mEval)
		e.emit(metric(fmt.Sprintf("%s n=%d engine-nocache x%d", wl.name, n, k), "engine baseline", dEngineCold))
		mHot := metric(fmt.Sprintf("%s n=%d engine-plan x%d", wl.name, n, k),
			fmt.Sprintf("plan_hits=%d/%d", planHits, k), dEngineHot)
		mHot.Speedup = float64(dEngineCold) / float64(dEngineHot)
		e.emit(mHot)
	}
}

// runPlanSnapshot covers E21: the flattened evaluation IR. Part one
// compares the throughput of the Program interpreter (what the solver
// serves with) against the PR 2 plan-tree evaluators over the same
// reweight stream, checking byte-identical results. Part two measures
// warm-start serving: a cold engine pays one compilation per structure,
// while a fresh engine restored from the first engine's plan snapshot
// serves the entire stream as plan hits with zero compilations.
func runPlanSnapshot(e *E) {
	r := e.r
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 4
	if n < 64 {
		n = 64
	}
	workloads := []reweightWorkload{
		{"2WP (Prop 4.11)", gen.RandConnected(r, 5, 1, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5)},
		{"DWT (Prop 4.10)", gen.Rand1WP(r, 7, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"PT (Prop 5.4)", gen.RandDWT(r, 4, un),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, n/2, un), 0.5)},
	}
	opts := &core.Options{DisableFallback: true}
	for _, wl := range workloads {
		variants := make([]*graph.ProbGraph, *reweights)
		for i := range variants {
			h2 := graph.NewProbGraph(wl.h.G)
			for ei := 0; ei < wl.h.G.NumEdges(); ei++ {
				e.check(h2.SetProb(ei, big.NewRat(int64(r.Intn(17)), 16)))
			}
			variants[i] = h2
		}
		k := len(variants)

		// Part one: interpreter vs tree evaluation on one compiled plan.
		cp, err := core.Compile(wl.q, wl.h, opts)
		e.check(err)
		prog := cp.Program()
		start := time.Now()
		treeRes := make([]*big.Rat, k)
		for i, h2 := range variants {
			res, err := cp.EvaluateTree(h2.Probs())
			e.check(err)
			treeRes[i] = res.Prob
		}
		dTree := time.Since(start)
		// Raw interpreter against raw tree: probe Exec directly so both
		// sides skip the serving path's probability validation.
		start = time.Now()
		for i, h2 := range variants {
			pr, err := prog.Exec(h2.Probs())
			e.check(err)
			if pr.Cmp(treeRes[i]) != 0 {
				e.fatalf("%s: interpreter diverged from tree evaluation", wl.name)
			}
		}
		dExec := time.Since(start)
		e.emit(metric(fmt.Sprintf("%s n=%d tree x%d", wl.name, n, k),
			fmt.Sprintf("%d ops baseline", prog.NumOps()), dTree))
		mExec := metric(fmt.Sprintf("%s n=%d exec x%d", wl.name, n, k), "match=true", dExec)
		mExec.Speedup = float64(dTree) / float64(dExec)
		e.emit(mExec)

		// Part two: cold serving vs warm-start from a snapshot.
		serve := func(eng *engine.Engine) (time.Duration, int) {
			hits := 0
			start := time.Now()
			for _, h2 := range variants {
				res := eng.Do(engine.Job{Query: wl.q, Instance: h2, Opts: opts})
				e.check(res.Err)
				if res.PlanHit {
					hits++
				}
			}
			return time.Since(start), hits
		}
		cold := engine.New(engine.Options{Workers: 1})
		dCold, _ := serve(cold)
		var snap bytes.Buffer
		saved, err := cold.SavePlans(&snap)
		e.check(err)
		e.check(cold.Close())
		warm := engine.New(engine.Options{Workers: 1})
		_, err = warm.LoadPlans(bytes.NewReader(snap.Bytes()))
		e.check(err)
		dWarm, warmHits := serve(warm)
		st := warm.Stats()
		e.check(warm.Close())
		mCold := metric(fmt.Sprintf("%s n=%d cold x%d", wl.name, n, k),
			fmt.Sprintf("snapshot=%d plans", saved), dCold)
		mCold.Counters = map[string]int64{"snapshot_bytes": int64(snap.Len())}
		e.emit(mCold)
		mWarm := metric(fmt.Sprintf("%s n=%d warm x%d", wl.name, n, k),
			fmt.Sprintf("plan_hits=%d/%d compiles=%d", warmHits, k, st.PlanCompiles), dWarm)
		mWarm.Speedup = float64(dCold) / float64(dWarm)
		e.emit(mWarm)
		if st.PlanCompiles != 0 {
			e.fatalf("warm-started engine compiled %d plans, want 0", st.PlanCompiles)
		}
		if warmHits != k {
			e.fatalf("warm-started engine served %d/%d plan hits", warmHits, k)
		}
	}
}

// runFloatPath covers E22: the dual-precision evaluation of the Program
// IR. Part one measures raw substrate throughput over a reweight stream
// on the 2WP and DWT workloads — the exact big.Rat interpreter
// (Program.Exec) against the certified float64 interval kernel
// (Program.ExecFloat) — asserting for every evaluation that the exact
// answer lies inside the kernel's reported enclosure (the containment
// guarantee is a hard invariant, so its violation fails the
// experiment). Part two sweeps the auto-mode tolerance and reports the
// fallback rate: how many evaluations the engine would answer from the
// float path at each tolerance, checking that every fallback answer is
// byte-identical to the exact one.
func runFloatPath(e *E) {
	r := e.r
	one := []graph.Label{"R"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 4
	if n < 64 {
		n = 64
	}
	// Single-label workloads, so the query matches densely across the
	// instance and the lowered programs are genuinely linear-size (a
	// sparse-matching query prunes to a handful of ops, which would
	// benchmark per-call overhead instead of the substrates).
	workloads := []reweightWorkload{
		{"2WP (Prop 4.11)", graph.Path2WP(graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R")),
			gen.RandProb(r, gen.RandInClass(r, graph.Class2WP, n, one), 0.5)},
		{"DWT (Prop 3.6)", graph.UnlabeledPath(3),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
	}
	opts := &core.Options{DisableFallback: true}
	for _, wl := range workloads {
		// Probabilities with four decimal digits, the shape of real
		// traffic ("0.8437"): non-dyadic, so the float path genuinely
		// rounds and the enclosure is exercised, and with denominators
		// that make exact products grow the way production reweights do.
		assignments := make([][]*big.Rat, *reweights)
		for i := range assignments {
			probs := make([]*big.Rat, wl.h.G.NumEdges())
			for ei := range probs {
				probs[ei] = big.NewRat(int64(r.Intn(10001)), 10000)
			}
			assignments[i] = probs
		}
		k := len(assignments)
		cp, err := core.Compile(wl.q, wl.h, opts)
		e.check(err)
		prog := cp.Program()

		// Part one: substrate throughput, with containment checked on
		// every single evaluation.
		exact := make([]*big.Rat, k)
		start := time.Now()
		for i, probs := range assignments {
			exact[i], err = prog.Exec(probs)
			e.check(err)
		}
		dExact := time.Since(start)
		enclosures := make([]plan.Enclosure, k)
		start = time.Now()
		for i, probs := range assignments {
			enclosures[i], err = prog.ExecFloat(probs)
			e.check(err)
		}
		dFloat := time.Since(start)
		// Containment is verified outside the timed loop (the check
		// itself runs rational arithmetic).
		var maxWidth float64
		for i, iv := range enclosures {
			if !iv.Contains(exact[i]) {
				e.fatalf("%s: exact answer %s outside certified enclosure [%g, %g]",
					wl.name, exact[i].RatString(), iv.Lo, iv.Hi)
			}
			if iv.Width() > maxWidth {
				maxWidth = iv.Width()
			}
		}
		e.emit(metric(fmt.Sprintf("%s n=%d exact x%d", wl.name, n, k),
			fmt.Sprintf("%d ops baseline", prog.NumOps()), dExact))
		mFloat := metric(fmt.Sprintf("%s n=%d float x%d", wl.name, n, k),
			fmt.Sprintf("contained=%d/%d width≤%.1e", k, k, maxWidth), dFloat)
		mFloat.Speedup = float64(dExact) / float64(dFloat)
		e.emit(mFloat)

		// The batched kernel over the same vectors: one dispatch per
		// instruction for all lanes. Its contract is bitwise equality
		// with per-vector ExecFloat, so the enclosures are compared
		// exactly, not within a tolerance.
		start = time.Now()
		batched, err := prog.ExecFloatBatch(assignments)
		e.check(err)
		dBatch := time.Since(start)
		for i, iv := range batched {
			if iv != enclosures[i] {
				e.fatalf("%s: batched lane %d enclosure [%g, %g] != ExecFloat [%g, %g]",
					wl.name, i, iv.Lo, iv.Hi, enclosures[i].Lo, enclosures[i].Hi)
			}
		}
		mBatch := metric(fmt.Sprintf("%s n=%d float batched x%d", wl.name, n, k),
			fmt.Sprintf("lanes=%d bitwise-equal", k), dBatch)
		mBatch.Speedup = float64(dFloat) / float64(dBatch)
		e.emit(mBatch)

		// Part two: auto-mode fallback rate across tolerances. A
		// tolerance below the kernel's actual width forces exact
		// fallback on every job; anything above it serves pure float.
		for _, tol := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
			aopts := &core.Options{DisableFallback: true, Precision: core.PrecisionAuto, FloatTolerance: tol}
			fast, fallbacks := 0, 0
			start = time.Now()
			for i, probs := range assignments {
				res, err := cp.EvaluateOpts(probs, aopts)
				e.check(err)
				if res.Precision == core.PrecisionFast {
					fast++
				} else {
					fallbacks++
					if res.Prob.Cmp(exact[i]) != 0 {
						e.fatalf("%s: auto fallback diverged from exact", wl.name)
					}
				}
			}
			d := time.Since(start)
			e.emit(metric(fmt.Sprintf("%s n=%d auto tol=%.0e", wl.name, n, tol),
				fmt.Sprintf("fast=%d fallback=%d (%.0f%%)", fast, fallbacks, 100*float64(fallbacks)/float64(k)), d))
		}
	}
}

// runBatchedReweight covers E24: end-to-end reweight throughput through
// the engine as a function of batch width. One tractable structure
// (dense 2WP and DWT workloads, as in E22), many distinct probability
// vectors; width 1 loops Engine.Do per vector — paying
// canonicalization, key hashing and scheduling per job — while widths
// 8/64/256 submit the vectors in SolveBatch chunks, which the engine's
// same-structure grouping routes through the vectorized kernel as one
// keying pass and one dispatch per chunk. Results must be
// byte-identical across widths (the batched kernel is bitwise equal to
// per-vector evaluation), the BatchRuns/BatchLanes counters must
// account for every lane, and the width-64 speedup over width-1 has a
// hard floor. The probability vectors are all distinct on purpose:
// identical lanes would be coalesced by the engine's in-group dedup and
// the measurement would collapse.
func runBatchedReweight(e *E) {
	r := e.r
	one := []graph.Label{"R"}
	un := []graph.Label{graph.Unlabeled}
	// Mid-sized instances: large enough that the lowered programs are
	// real work, small enough that the per-job fixed costs the batched
	// path amortizes stay visible next to the per-lane arithmetic.
	n := *maxN / 32
	if n < 48 {
		n = 48
	}
	vectors := 4 * (*reweights)
	workloads := []reweightWorkload{
		{"2WP (Prop 4.11)", graph.Path2WP(graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R")),
			gen.RandProb(r, gen.RandInClass(r, graph.Class2WP, n, one), 0.5)},
		{"DWT (Prop 3.6)", graph.UnlabeledPath(3),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
	}
	opts := &core.Options{DisableFallback: true, Precision: core.PrecisionFast}
	for _, wl := range workloads {
		numEdges := wl.h.G.NumEdges()
		makeLane := func() *graph.ProbGraph {
			inst := wl.h.CloneProbs()
			for ei := 0; ei < numEdges; ei++ {
				e.check(inst.SetProb(ei, big.NewRat(int64(r.Intn(10001)), 10000)))
			}
			return inst
		}
		jobs := make([]engine.Job, vectors)
		for i := range jobs {
			jobs[i] = engine.Job{Query: wl.q, Instance: makeLane(), Opts: opts}
		}
		warmup := engine.Job{Query: wl.q, Instance: makeLane(), Opts: opts}

		var baseline []string
		var d1 time.Duration
		for _, w := range []int{1, 8, 64, 256} {
			if w > vectors {
				continue
			}
			// Each width runs three times on a fresh engine with
			// memoization off — every vector is genuinely evaluated, the
			// warmup job pre-compiles the structure so each rep measures
			// evaluation rather than the one-off compile, and the best of
			// the three reps is recorded (per-width elapsed is a few
			// milliseconds, where scheduler noise would otherwise dominate
			// the width-to-width ratios).
			var d time.Duration
			var st engine.Stats
			var got []string
			for rep := 0; rep < 3; rep++ {
				eng := engine.New(engine.Options{CacheSize: -1})
				if res := eng.Do(warmup); res.Err != nil {
					e.check(res.Err)
				}
				got = make([]string, vectors)
				start := time.Now()
				if w == 1 {
					for i, j := range jobs {
						res := eng.Do(j)
						e.check(res.Err)
						got[i] = res.Result.Prob.RatString()
					}
				} else {
					for lo := 0; lo < vectors; lo += w {
						hi := lo + w
						if hi > vectors {
							hi = vectors
						}
						for i, res := range eng.SolveBatch(jobs[lo:hi]) {
							e.check(res.Err)
							got[lo+i] = res.Result.Prob.RatString()
						}
					}
				}
				dr := time.Since(start)
				st = eng.Stats()
				e.check(eng.Close())
				if rep == 0 || dr < d {
					d = dr
				}
			}

			if w == 1 {
				baseline, d1 = got, d
			} else {
				for i := range got {
					if got[i] != baseline[i] {
						e.fatalf("%s width=%d: lane %d diverged from width-1 (%s vs %s)",
							wl.name, w, i, got[i], baseline[i])
					}
				}
				wantRuns := uint64((vectors + w - 1) / w)
				if st.BatchRuns != wantRuns || st.BatchLanes != uint64(vectors) {
					e.fatalf("%s width=%d: batch_runs=%d batch_lanes=%d, want %d/%d",
						wl.name, w, st.BatchRuns, st.BatchLanes, wantRuns, vectors)
				}
			}
			m := metric(fmt.Sprintf("%s n=%d width=%d", wl.name, n, w),
				fmt.Sprintf("vectors=%d", vectors), d)
			m.Counters = map[string]int64{
				"batch_runs":    int64(st.BatchRuns),
				"batch_lanes":   int64(st.BatchLanes),
				"plan_compiles": int64(st.PlanCompiles),
			}
			m.OpsPerSec = float64(vectors) / d.Seconds()
			if w > 1 {
				m.Speedup = float64(d1) / float64(d)
				// The conservative in-code floor; the recorded artifact
				// carries the actual ratio (well above this on an idle
				// machine — see EXPERIMENTS.md E24).
				if w == 64 && m.Speedup < 2 {
					e.fatalf("%s: width-64 speedup %.2fx below the 2x floor", wl.name, m.Speedup)
				}
			}
			e.emit(m)
		}
	}
}

// runWorkloadFamilies covers E23: the phomgen random-graph families
// (Erdős–Rényi, Barabási–Albert, power-law) as instances across the
// dispatch lattice. For each family it asserts (1) class membership of
// the generated instance, (2) a lossless graphio wire round-trip,
// (3) the dispatch-lattice verdict census over a graded query ladder
// plus a reachability UCQ — these random models land in #P-hard cells,
// which is exactly why they matter: they exercise the fallback path —
// and (4) needle-query throughput through the public request API
// (phom.SolveContext) with a match limit: walk-derived 1WP queries over
// fresh probability assignments, every outcome accounted as ok or
// limit — plus (5) a hard-cell row on a 4× larger instance, past where
// the lineage fallback's match enumeration is affordable, answered by
// the seeded Karp–Luby estimator with statistical bounds and a
// byte-identical same-seed twin.
func runWorkloadFamilies(e *E) {
	r := e.r
	rs := []graph.Label{"R", "S"}
	// E23 is a coverage-and-accounting experiment, not a scaling sweep:
	// the instance size is pinned (modulo very small -maxn overrides) so
	// the needle phase keeps a mix of completed and limit-bounded
	// outcomes on every family. On hub-heavy BA instances the match
	// count grows sharply with n, and much past ~48 vertices every
	// needle exceeds any affordable match limit, which would make the
	// ok/limit split degenerate.
	n := 48
	if *maxN/64 < n {
		n = *maxN / 64
	}
	if n < 16 {
		n = 16
	}
	const matchLimit = 48
	for _, f := range []gen.Family{gen.FamER, gen.FamBA, gen.FamPLaw} {
		// (1) Generation + class membership.
		start := time.Now()
		g := gen.RandFamily(r, f, n, rs)
		if !g.InClass(f.Class()) {
			e.fatalf("%v instance left its claimed class %v", f, f.Class())
		}
		h := gen.RandProb(r, g, 0.5)
		dGen := time.Since(start)
		mGen := metric(fmt.Sprintf("%s n=%d membership", f, n),
			fmt.Sprintf("class=%v", f.Class()), dGen)
		mGen.Counters = map[string]int64{
			"vertices":  int64(g.NumVertices()),
			"edges":     int64(g.NumEdges()),
			"uncertain": int64(len(h.UncertainEdges())),
		}
		e.emit(mGen)

		// (2) graphio wire round-trip.
		start = time.Now()
		var buf bytes.Buffer
		e.check(graphio.WriteProbGraph(&buf, h))
		wire := buf.Len()
		parsed, err := graphio.ParseProbGraph(&buf)
		e.check(err)
		dRT := time.Since(start)
		if parsed.G.NumVertices() != g.NumVertices() || parsed.G.NumEdges() != g.NumEdges() {
			e.fatalf("%v round-trip changed the graph", f)
		}
		for i := 0; i < g.NumEdges(); i++ {
			if parsed.Prob(i).Cmp(h.Prob(i)) != 0 {
				e.fatalf("%v round-trip changed probability of edge %d", f, i)
			}
		}
		mRT := metric(fmt.Sprintf("%s n=%d graphio round-trip", f, n), "match=true", dRT)
		mRT.Counters = map[string]int64{"wire_bytes": int64(wire)}
		e.emit(mRT)

		// (3) Verdict census: where does this family land in Tables 1–3
		// for a graded query ladder + reachability UCQ? Random models are
		// class-All/Connected instances, so most cells are #P-hard — the
		// census records the lattice's answer rather than assuming it.
		start = time.Now()
		var queries []*graph.Graph
		for _, qc := range []graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT} {
			queries = append(queries, gen.QueryLadder(r, qc, 3, 5, rs)...)
		}
		queries = append(queries, gen.ReachabilityUCQ(3, "R")...)
		var tractable, hard int64
		for _, q := range queries {
			_, _, _, v := core.PredictInput(q, h)
			if v.Tractable {
				tractable++
			} else {
				hard++
			}
		}
		dCensus := time.Since(start)
		mCensus := metric(fmt.Sprintf("%s n=%d verdict census", f, n),
			fmt.Sprintf("queries=%d", len(queries)), dCensus)
		mCensus.Counters = map[string]int64{"tractable": tractable, "hard": hard}
		e.emit(mCensus)

		// (4) Needle throughput through the public request API: the hard
		// cells are served by the lineage fallback, kept cheap by walk
		// queries (guaranteed matches) under a match limit. The brute
		// force limit is lowered so world enumeration only runs when it
		// is genuinely cheap (≤ 2^8 worlds) — at the default limit these
		// instances sit just under it and would enumerate 2^20 worlds.
		// Every outcome must be accounted ok or limit; anything else
		// fails.
		needles := make([]*graph.Graph, 0, 8)
		for len(needles) < 8 {
			q := gen.RandWalkQuery(r, g, 1+len(needles)%3)
			if q == nil {
				break
			}
			needles = append(needles, q)
		}
		if len(needles) == 0 {
			e.fatalf("%v instance has no edges to derive needle queries from", f)
		}
		var ok, limit int64
		ctx := context.Background()
		start = time.Now()
		for i := 0; i < *reweights; i++ {
			h2 := gen.RandProb(r, g, 0.5)
			req := phom.NewRequest(needles[i%len(needles)], h2,
				phom.WithMatchLimit(matchLimit), phom.WithBruteForceLimit(8))
			_, err := phom.SolveContext(ctx, req)
			switch {
			case err == nil:
				ok++
			case phomerr.CodeOf(err) == phomerr.CodeLimit:
				limit++
			default:
				e.fatalf("%v needle %d: unaccounted outcome: %v", f, i, err)
			}
		}
		dNeedle := time.Since(start)
		if ok == 0 {
			e.fatalf("%v: no needle query completed under match limit %d", f, matchLimit)
		}
		mNeedle := metric(fmt.Sprintf("%s n=%d needles x%d", f, n, *reweights), "accounted=true", dNeedle)
		mNeedle.Counters = map[string]int64{"ok": ok, "limit": limit}
		if s := dNeedle.Seconds(); s > 0 {
			mNeedle.OpsPerSec = float64(*reweights) / s
		}
		e.emit(mNeedle)

		// (5) The hard-cell size unpinned: the pinned n above exists
		// because the lineage fallback's match enumeration outgrows any
		// affordable limit — the reason the needle phase caps n at ~48.
		// On a 4× larger twin of the family the same public API answers
		// a hard cell through the seeded Karp–Luby estimator instead: no
		// match limit, no brute-force horizon, statistical bounds, and a
		// same-seed twin byte-identical (the serving tier's caching
		// contract). The needle is the first walk query whose verdict is
		// #P-hard, so the row genuinely exercises the approx path.
		nBig := 4 * n
		gBig := gen.RandFamily(r, f, nBig, rs)
		// Interior probabilities k/16 ∈ (0,1) on every edge: a single
		// probability-1 edge would let the estimator short-circuit a
		// one-variable clause exactly and record a degenerate zero-sample
		// row instead of a sampling run.
		hBig := graph.NewProbGraph(gBig)
		for i := 0; i < gBig.NumEdges(); i++ {
			e.check(hBig.SetProb(i, big.NewRat(int64(1+r.Intn(15)), 16)))
		}
		var qBig *graph.Graph
		for _, wl := range []int{1, 2, 3} {
			q := gen.RandWalkQuery(r, gBig, wl)
			if q == nil {
				continue
			}
			if _, _, _, v := core.PredictInput(q, hBig); !v.Tractable {
				qBig = q
				break
			}
		}
		if qBig == nil {
			e.fatalf("%v n=%d: no walk query landed in a hard cell", f, nBig)
		}
		req := phom.NewRequest(qBig, hBig,
			phom.WithPrecision(phom.PrecisionApprox),
			phom.WithEpsilon(0.3), phom.WithDelta(0.2), phom.WithSeed(uint64(*seed)))
		start = time.Now()
		res, err := phom.SolveContext(ctx, req)
		e.check(err)
		dBig := time.Since(start)
		if res.Method != core.MethodKarpLuby || res.Bounds == nil {
			e.fatalf("%v n=%d: hard cell served by %v without bounds", f, nBig, res.Method)
		}
		p, _ := res.Prob.Float64()
		if p < res.Bounds.Lo || p > res.Bounds.Hi || res.Bounds.Lo < 0 || res.Bounds.Hi > 1 {
			e.fatalf("%v n=%d: approx estimate %v outside its bounds %+v", f, nBig, p, res.Bounds)
		}
		twin, err := phom.SolveContext(ctx, req)
		e.check(err)
		if twin.Prob.Cmp(res.Prob) != 0 || twin.ApproxSamples != res.ApproxSamples {
			e.fatalf("%v n=%d: same-seed approx twin diverged", f, nBig)
		}
		if res.ApproxSamples <= 0 {
			e.fatalf("%v n=%d: approx needle drew no samples", f, nBig)
		}
		mBig := metric(fmt.Sprintf("%s n=%d approx needle", f, nBig),
			fmt.Sprintf("method=%v twin=equal", res.Method), dBig)
		mBig.Counters = map[string]int64{"samples": res.ApproxSamples}
		mBig.OpsPerSec = float64(res.ApproxSamples) / dBig.Seconds()
		e.emit(mBig)
	}
}
