// Command phombench is the experiment harness: for every table and
// figure of the paper it regenerates the corresponding artifact
// empirically (see EXPERIMENTS.md for the index E1–E20). For PTIME cells
// it measures runtime scaling of the dispatched algorithm over growing
// instances; for #P-hard cells it executes the paper's reduction, checks
// the exact counting identity, and measures the exponential growth of the
// exact baseline. E19 drives the concurrent engine of internal/engine
// over a mixed batch workload and measures the speedup over sequential
// solving; E20 measures the compile/evaluate split of the solver plans
// (internal/plan): how much a one-time structural compilation amortizes
// over repeated reweighted evaluations, directly and through the
// engine's structure-keyed plan cache. E21 measures the flattened
// evaluation IR: the throughput of the Program interpreter against the
// plan-tree evaluators, and the warm-start win of serving a reweight
// stream from a deserialized plan snapshot (zero compilations) against
// a cold engine. E22 measures the dual-precision substrates: the
// certified float64 interval kernel against the exact big.Rat
// interpreter on the same programs (asserting the exact answer stays
// inside every reported enclosure), plus the auto-mode fallback rate
// across tolerances. Results are printed as aligned tables; -csv emits
// machine-readable rows.
//
// Usage:
//
//	phombench [-experiment E13] [-seed 1] [-maxn 4096] [-csv]
//	          [-workers 0] [-batchjobs 128] [-reweights 64]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"phom/internal/core"
	"phom/internal/counting"
	"phom/internal/engine"
	"phom/internal/gen"
	"phom/internal/graph"
	"phom/internal/plan"
	"phom/internal/reductions"
)

var (
	experiment = flag.String("experiment", "", "run a single experiment (e.g. E13); default all")
	seed       = flag.Int64("seed", 1, "random seed")
	maxN       = flag.Int("maxn", 4096, "largest instance size for scaling sweeps")
	csvOut     = flag.Bool("csv", false, "emit CSV rows instead of aligned text")
	workers    = flag.Int("workers", 0, "E19: fixed engine worker count (0 = sweep 1, 2, 4, NumCPU)")
	batchJobs  = flag.Int("batchjobs", 128, "E19: number of jobs in the engine batch workload")
	reweights  = flag.Int("reweights", 64, "E20: reweighted evaluations per compiled plan")
)

type row struct {
	experiment string
	params     string
	value      string
	elapsed    time.Duration
}

var results []row

func emit(exp, params, value string, elapsed time.Duration) {
	results = append(results, row{exp, params, value, elapsed})
	if *csvOut {
		fmt.Printf("%s,%s,%s,%d\n", exp, params, value, elapsed.Microseconds())
	} else {
		fmt.Printf("  %-34s %-28s %12s\n", params, value, elapsed.Round(time.Microsecond))
	}
}

func section(id, title string) bool {
	if *experiment != "" && !strings.EqualFold(*experiment, id) {
		return false
	}
	if !*csvOut {
		fmt.Printf("\n%s — %s\n", id, title)
	}
	return true
}

func main() {
	flag.Parse()
	if *csvOut {
		fmt.Println("experiment,params,value,elapsed_us")
	}
	runTables()
	runFigures()
	runPropositions()
	runAblations()
	runEngineBatch()
	runPlanReweight()
	runPlanSnapshot()
	runFloatPath()
	if !*csvOut {
		fmt.Printf("\n%d measurements.\n", len(results))
	}
}

// sizes yields a doubling sweep up to maxN.
func sizes() []int {
	var out []int
	for n := 64; n <= *maxN; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{*maxN}
	}
	return out
}

// timeSolve runs the dispatched solver and reports failures.
func timeSolve(q *graph.Graph, h *graph.ProbGraph) (time.Duration, *core.Result) {
	start := time.Now()
	res, err := core.Solve(q, h, &core.Options{DisableFallback: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phombench: solver refused a tractable cell:", err)
		os.Exit(1)
	}
	return time.Since(start), res
}

// runTables covers E1–E3: for each tractable cell of each table, a
// scaling sweep of the PTIME algorithm; for each hard border cell, an
// exponential sweep of the brute-force baseline on reduction outputs.
func runTables() {
	type tableSpec struct {
		id, name string
		rows     []graph.Class
		cols     []graph.Class
		labeled  bool
	}
	conn := []graph.Class{graph.Class1WP, graph.Class2WP, graph.ClassDWT, graph.ClassPT, graph.ClassConnected}
	disc := []graph.Class{graph.ClassU1WP, graph.ClassU2WP, graph.ClassUDWT, graph.ClassUPT, graph.ClassAll}
	specs := []tableSpec{
		{"E1", "Table 1 (unlabeled, disconnected queries)", disc, conn, false},
		{"E2", "Table 2 (labeled, connected queries)", conn, conn, true},
		{"E3", "Table 3 (unlabeled, connected queries)", conn, conn, false},
	}
	for _, spec := range specs {
		if !section(spec.id, spec.name) {
			continue
		}
		labels := []graph.Label{graph.Unlabeled}
		if spec.labeled {
			labels = []graph.Label{"R", "S"}
		}
		for _, qc := range spec.rows {
			for _, ic := range spec.cols {
				v := core.Predict(qc, ic, spec.labeled)
				cellName := fmt.Sprintf("%v/%v", qc, ic)
				if v.Tractable {
					r := rand.New(rand.NewSource(*seed))
					for _, n := range sizes() {
						q := gen.RandInClass(r, qc, 6, labels)
						h := gen.RandProb(r, gen.RandInClass(r, ic, n, labels), 0.5)
						d, res := timeSolve(q, h)
						emit(spec.id, fmt.Sprintf("%s n=%d", cellName, n),
							fmt.Sprintf("PTIME/%v", res.Method), d)
					}
				} else {
					// Exponential baseline on small instances only.
					r := rand.New(rand.NewSource(*seed))
					for k := 8; k <= 14; k += 2 {
						q := gen.RandInClass(r, qc, 4, labels)
						h := gen.RandProb(r, gen.RandInClass(r, ic, k, labels), 0)
						start := time.Now()
						_, err := core.BruteForceLimit(q, h, 0)
						d := time.Since(start)
						val := "#P-hard/brute"
						if err != nil {
							val = "#P-hard/skipped"
						}
						emit(spec.id, fmt.Sprintf("%s k=%d coins", cellName, k), val, d)
					}
				}
			}
		}
	}
}

func runFigures() {
	if section("E4", "Figure 1 + Example 2.2 (Pr = 0.574)") {
		q := graph.New(4)
		q.MustAddEdge(0, 1, "R")
		q.MustAddEdge(1, 2, "S")
		q.MustAddEdge(3, 2, "S")
		g := graph.New(4)
		g.MustAddEdge(0, 1, "R")
		g.MustAddEdge(0, 2, "R")
		g.MustAddEdge(1, 2, "R")
		g.MustAddEdge(1, 3, "R")
		g.MustAddEdge(0, 3, "R")
		g.MustAddEdge(2, 3, "S")
		h := graph.NewProbGraph(g)
		h.MustSetEdgeProb(0, 2, graph.Rat("0.1"))
		h.MustSetEdgeProb(1, 2, graph.Rat("0.8"))
		h.MustSetEdgeProb(1, 3, graph.Rat("0.1"))
		h.MustSetEdgeProb(0, 3, graph.Rat("0.05"))
		h.MustSetEdgeProb(2, 3, graph.Rat("0.7"))
		start := time.Now()
		p := core.BruteForce(q, h)
		emit("E4", "example 2.2", "Pr="+p.RatString(), time.Since(start))
	}
	if section("E5", "Figure 2 (class inclusion lattice)") {
		r := rand.New(rand.NewSource(*seed))
		start := time.Now()
		violations := 0
		for trial := 0; trial < 2000; trial++ {
			g := gen.RandInClass(r, graph.AllClasses[r.Intn(len(graph.AllClasses))], 1+r.Intn(8), []graph.Label{"R", "S"})
			for _, a := range graph.AllClasses {
				for _, b := range graph.AllClasses {
					if graph.ClassIncluded(a, b) && g.InClass(a) && !g.InClass(b) {
						violations++
					}
				}
			}
		}
		emit("E5", "2000 random graphs × 100 pairs", fmt.Sprintf("violations=%d", violations), time.Since(start))
	}
	if section("E6", "Figures 3/4 (class examples)") {
		start := time.Now()
		fig3top := graph.Path1WP("R", "S", "S", "T")
		fig3bot := graph.Path2WP(graph.Fwd("R"), graph.Bwd("S"), graph.Fwd("S"), graph.Bwd("T"), graph.Fwd("R"))
		ok := fig3top.Is1WP() && fig3bot.Is2WP() && !fig3bot.Is1WP()
		emit("E6", "figure 3 shapes", fmt.Sprintf("recognized=%v", ok), time.Since(start))
	}
	if section("E7", "Figure 5 + Prop 3.3 (#Bipartite-Edge-Cover reduction)") {
		r := rand.New(rand.NewSource(*seed))
		for m := 4; m <= 16; m += 4 {
			bg := gen.RandBipartite(r, 3, 3, m)
			red, err := reductions.EdgeCoverLabeled(bg)
			if err != nil {
				fatal(err)
			}
			want, err := bg.CountEdgeCovers()
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			p := core.BruteForce(red.Query, red.Instance)
			got := red.CountFromProb(p)
			d := time.Since(start)
			emit("E7", fmt.Sprintf("|E|=%d", len(bg.Edges)),
				fmt.Sprintf("#EC=%s match=%v", got, got.Cmp(want) == 0), d)
		}
	}
	if section("E8", "Figure 6 (graded DAG levels)") {
		r := rand.New(rand.NewSource(*seed))
		start := time.Now()
		graded, total := 0, 500
		for trial := 0; trial < total; trial++ {
			g := gen.RandGradedDAG(r, 10, 20, 4, nil)
			if g.IsGradedDAG() {
				graded++
			}
		}
		emit("E8", "500 constructed graded DAGs", fmt.Sprintf("graded=%d/%d", graded, total), time.Since(start))
	}
	if section("E9", "Figure 7 + Prop 4.1 (#PP2DNF labeled reduction)") {
		runPP2DNF("E9", reductions.PP2DNFLabeled)
	}
	if section("E10", "Figure 8 + Prop 5.6 (#PP2DNF unlabeled reduction)") {
		runPP2DNF("E10", reductions.PP2DNFUnlabeled)
	}
}

func runPP2DNF(id string, build func(*counting.PP2DNF) (*reductions.Reduction, error)) {
	r := rand.New(rand.NewSource(*seed))
	for n := 2; n <= 5; n++ {
		f := gen.RandPP2DNF(r, n, n, n+2)
		red, err := build(f)
		if err != nil {
			fatal(err)
		}
		want, err := f.CountSatisfying()
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		p := core.BruteForce(red.Query, red.Instance)
		got := red.CountFromProb(p)
		d := time.Since(start)
		emit(id, fmt.Sprintf("n1=n2=%d m=%d", n, len(f.Clauses)),
			fmt.Sprintf("#SAT=%s match=%v", got, got.Cmp(want) == 0), d)
	}
}

func runPropositions() {
	if section("E11", "Prop 3.4 (label simulation by two-wayness)") {
		r := rand.New(rand.NewSource(*seed))
		for m := 2; m <= 4; m++ {
			bg := gen.RandBipartite(r, 2, 2, m)
			red, err := reductions.EdgeCoverUnlabeled(bg)
			if err != nil {
				fatal(err)
			}
			want, _ := bg.CountEdgeCovers()
			start := time.Now()
			p := core.BruteForce(red.Query, red.Instance)
			got := red.CountFromProb(p)
			emit("E11", fmt.Sprintf("|E|=%d unlabeled", len(bg.Edges)),
				fmt.Sprintf("#EC=%s match=%v", got, got.Cmp(want) == 0), time.Since(start))
		}
	}
	scaling := []struct {
		id, name string
		qc, ic   graph.Class
		labeled  bool
		qSize    int
	}{
		{"E12", "Prop 3.6 (arbitrary queries on ⊔DWT)", graph.ClassAll, graph.ClassUDWT, false, 8},
		{"E13", "Prop 4.10 (labeled 1WP on DWT)", graph.Class1WP, graph.ClassDWT, true, 5},
		{"E14", "Prop 4.11 (connected on 2WP)", graph.ClassConnected, graph.Class2WP, true, 5},
		{"E15", "Prop 5.4 (unlabeled 1WP on PT)", graph.Class1WP, graph.ClassPT, false, 6},
		{"E16", "Prop 5.5 (DWT queries on PT)", graph.ClassDWT, graph.ClassPT, false, 8},
		{"E17", "Lemma 3.7 (disconnected instances)", graph.Class1WP, graph.ClassUPT, false, 4},
	}
	for _, s := range scaling {
		if !section(s.id, s.name+" — runtime scaling") {
			continue
		}
		labels := []graph.Label{graph.Unlabeled}
		if s.labeled {
			labels = []graph.Label{"R", "S"}
		}
		r := rand.New(rand.NewSource(*seed))
		var prev time.Duration
		for _, n := range sizes() {
			q := gen.RandInClass(r, s.qc, s.qSize, labels)
			h := gen.RandProb(r, gen.RandInClass(r, s.ic, n, labels), 0.5)
			d, res := timeSolve(q, h)
			ratio := "-"
			if prev > 0 {
				ratio = fmt.Sprintf("×%.2f", float64(d)/float64(prev))
			}
			prev = d
			emit(s.id, fmt.Sprintf("n=%d", n), fmt.Sprintf("%v %s", res.Method, ratio), d)
		}
	}
}

func runAblations() {
	if !section("E18", "Ablations (d-DNNF vs direct DP; baselines)") {
		return
	}
	r := rand.New(rand.NewSource(*seed))
	// Brute force vs lineage+Shannon on a sparse-match instance.
	q := gen.Rand1WP(r, 4, []graph.Label{"R", "S"})
	h := gen.RandProb(r, gen.RandDWT(r, 18, []graph.Label{"R", "S"}), 0)
	start := time.Now()
	pb, err := core.BruteForceLimit(q, h, 0)
	if err != nil {
		fatal(err)
	}
	dBrute := time.Since(start)
	start = time.Now()
	pl, err := core.LineageShannon(q, h, 0)
	if err != nil {
		fatal(err)
	}
	dLin := time.Since(start)
	emit("E18", "brute vs lineage (18 coins)",
		fmt.Sprintf("agree=%v speedup=×%.1f", pb.Cmp(pl) == 0, float64(dBrute)/float64(dLin)), dBrute+dLin)
	// Order the report deterministically for the summary.
	sort.SliceStable(results, func(i, j int) bool { return results[i].experiment < results[j].experiment })
}

// runEngineBatch covers E19: a mixed workload of tractable jobs (with
// duplicates, shuffled) solved sequentially and then through the engine
// at increasing worker counts. Every engine result is checked
// byte-identical to the sequential one, and the reported value includes
// the cache hit count and the wall-clock speedup.
func runEngineBatch() {
	if !section("E19", "Engine batch throughput (workers, dedup, memoization)") {
		return
	}
	r := rand.New(rand.NewSource(*seed))
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 16
	if n < 32 {
		n = 32
	}
	var distinct []engine.Job
	for len(distinct)*4 < *batchJobs {
		distinct = append(distinct,
			engine.Job{ // Prop 4.10
				Query:    gen.Rand1WP(r, 5, rs),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5),
			},
			engine.Job{ // Prop 4.11
				Query:    gen.RandConnected(r, 5, 1, rs),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5),
			},
			engine.Job{ // Prop 3.6
				Query:    gen.RandGraph(r, 6, 9, un),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5),
			},
			engine.Job{ // Props 5.4/5.5
				Query:    gen.RandDWT(r, 4, un),
				Instance: gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, n/2, un), 0.5),
			},
		)
	}
	jobs := make([]engine.Job, 0, len(distinct)*4)
	for _, j := range distinct {
		jobs = append(jobs, j, j, j, j)
	}
	r.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	if *batchJobs > 0 && len(jobs) > *batchJobs {
		jobs = jobs[:*batchJobs] // honor -batchjobs exactly
	}

	// Sequential baseline.
	seq := make([]*big.Rat, len(jobs))
	start := time.Now()
	for i, j := range jobs {
		res, err := core.Solve(j.Query, j.Instance, nil)
		if err != nil {
			fatal(err)
		}
		seq[i] = res.Prob
	}
	dSeq := time.Since(start)
	emit("E19", fmt.Sprintf("sequential jobs=%d", len(jobs)), "baseline ×1.00", dSeq)

	sweep := []int{1, 2, 4, runtime.NumCPU()}
	if *workers > 0 {
		sweep = []int{*workers}
	}
	seen := map[int]bool{}
	for _, w := range sweep {
		if seen[w] {
			continue // NumCPU may coincide with a fixed sweep entry
		}
		seen[w] = true
		e := engine.New(engine.Options{Workers: w})
		start = time.Now()
		out := e.SolveBatch(jobs)
		d := time.Since(start)
		st := e.Stats()
		if err := e.Close(); err != nil {
			fatal(err)
		}
		match := true
		for i := range jobs {
			if out[i].Err != nil {
				fatal(out[i].Err)
			}
			if out[i].Result.Prob.Cmp(seq[i]) != 0 {
				match = false
			}
		}
		emit("E19", fmt.Sprintf("workers=%d jobs=%d", w, len(jobs)),
			fmt.Sprintf("match=%v hits=%d ×%.2f", match, st.CacheHits, float64(dSeq)/float64(d)), d)
	}
}

// runPlanReweight covers E20: the compile/evaluate amortization of the
// solver plans. For each tractable workload it measures (a) the cold
// path — a full core.Solve per probability assignment, recompiling the
// structure every time; (b) one core.Compile; (c) plan evaluation per
// assignment; and (d) the same reweight stream through the engine,
// where every job after the first hits the structure-keyed plan cache.
// Every plan evaluation is checked byte-identical to its cold solve.
func runPlanReweight() {
	if !section("E20", "Plan compile/evaluate amortization (structure-keyed reweighting)") {
		return
	}
	r := rand.New(rand.NewSource(*seed))
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 4
	if n < 64 {
		n = 64
	}
	workloads := []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}{
		{"2WP (Prop 4.11)", gen.RandConnected(r, 5, 1, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5)},
		{"DWT (Prop 4.10)", gen.Rand1WP(r, 7, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"DWT (Prop 3.6)", gen.RandGradedDAG(r, 8, 12, 3, nil),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
	}
	for _, wl := range workloads {
		// One probability assignment per reweight, over the fixed structure.
		assignments := make([][]*big.Rat, *reweights)
		for i := range assignments {
			probs := make([]*big.Rat, wl.h.G.NumEdges())
			for ei := range probs {
				probs[ei] = big.NewRat(int64(r.Intn(17)), 16)
			}
			assignments[i] = probs
		}
		// Reweighted instances are prebuilt: the measurements below time
		// the solving/serving stack, not test-data construction.
		variants := make([]*graph.ProbGraph, len(assignments))
		for i, probs := range assignments {
			h2 := graph.NewProbGraph(wl.h.G)
			for ei, p := range probs {
				if err := h2.SetProb(ei, p); err != nil {
					fatal(err)
				}
			}
			variants[i] = h2
		}

		// (a) Cold: full solve per assignment.
		cold := make([]*big.Rat, len(assignments))
		start := time.Now()
		for i, h2 := range variants {
			res, err := core.Solve(wl.q, h2, &core.Options{DisableFallback: true})
			if err != nil {
				fatal(err)
			}
			cold[i] = res.Prob
		}
		dCold := time.Since(start)

		// (b) Compile once.
		start = time.Now()
		cp, err := core.Compile(wl.q, wl.h, &core.Options{DisableFallback: true})
		if err != nil {
			fatal(err)
		}
		dCompile := time.Since(start)

		// (c) Evaluate per assignment, checking exactness.
		match := true
		start = time.Now()
		for i, probs := range assignments {
			res, err := cp.Evaluate(probs)
			if err != nil {
				fatal(err)
			}
			if res.Prob.Cmp(cold[i]) != 0 {
				match = false
			}
		}
		dEval := time.Since(start)

		// (d) The same stream through the engine, plan cache off vs on:
		// both sides pay the serving overhead (canonical hashing, result
		// cache), so the ratio isolates what the plan cache saves.
		runEngine := func(planCacheSize int) (time.Duration, int) {
			e := engine.New(engine.Options{Workers: 1, PlanCacheSize: planCacheSize})
			defer e.Close()
			if res := e.Do(engine.Job{Query: wl.q, Instance: wl.h}); res.Err != nil {
				fatal(res.Err)
			}
			hits := 0
			start := time.Now()
			for _, h2 := range variants {
				res := e.Do(engine.Job{Query: wl.q, Instance: h2})
				if res.Err != nil {
					fatal(res.Err)
				}
				if res.PlanHit {
					hits++
				}
			}
			return time.Since(start), hits
		}
		dEngineCold, _ := runEngine(-1)
		dEngineHot, planHits := runEngine(0)

		k := len(assignments)
		emit("E20", fmt.Sprintf("%s n=%d compile", wl.name, n), "1 compilation", dCompile)
		emit("E20", fmt.Sprintf("%s n=%d cold x%d", wl.name, n, k), "baseline ×1.00", dCold)
		emit("E20", fmt.Sprintf("%s n=%d eval x%d", wl.name, n, k),
			fmt.Sprintf("match=%v ×%.1f", match, float64(dCold)/float64(dEval)), dEval)
		emit("E20", fmt.Sprintf("%s n=%d engine-nocache x%d", wl.name, n, k), "engine baseline", dEngineCold)
		emit("E20", fmt.Sprintf("%s n=%d engine-plan x%d", wl.name, n, k),
			fmt.Sprintf("plan_hits=%d/%d ×%.1f", planHits, k, float64(dEngineCold)/float64(dEngineHot)), dEngineHot)
	}
}

// runPlanSnapshot covers E21: the flattened evaluation IR. Part one
// compares the throughput of the Program interpreter (what the solver
// serves with) against the PR 2 plan-tree evaluators over the same
// reweight stream, checking byte-identical results. Part two measures
// warm-start serving: a cold engine pays one compilation per structure,
// while a fresh engine restored from the first engine's plan snapshot
// serves the entire stream as plan hits with zero compilations.
func runPlanSnapshot() {
	if !section("E21", "Evaluation IR (interpreter throughput, warm-start snapshots)") {
		return
	}
	r := rand.New(rand.NewSource(*seed))
	rs := []graph.Label{"R", "S"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 4
	if n < 64 {
		n = 64
	}
	workloads := []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}{
		{"2WP (Prop 4.11)", gen.RandConnected(r, 5, 1, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassU2WP, n, rs), 0.5)},
		{"DWT (Prop 4.10)", gen.Rand1WP(r, 7, rs),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, rs), 0.5)},
		{"PT (Prop 5.4)", gen.RandDWT(r, 4, un),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUPT, n/2, un), 0.5)},
	}
	opts := &core.Options{DisableFallback: true}
	for _, wl := range workloads {
		variants := make([]*graph.ProbGraph, *reweights)
		for i := range variants {
			h2 := graph.NewProbGraph(wl.h.G)
			for ei := 0; ei < wl.h.G.NumEdges(); ei++ {
				if err := h2.SetProb(ei, big.NewRat(int64(r.Intn(17)), 16)); err != nil {
					fatal(err)
				}
			}
			variants[i] = h2
		}
		k := len(variants)

		// Part one: interpreter vs tree evaluation on one compiled plan.
		cp, err := core.Compile(wl.q, wl.h, opts)
		if err != nil {
			fatal(err)
		}
		prog := cp.Program()
		match := true
		start := time.Now()
		treeRes := make([]*big.Rat, k)
		for i, h2 := range variants {
			res, err := cp.EvaluateTree(h2.Probs())
			if err != nil {
				fatal(err)
			}
			treeRes[i] = res.Prob
		}
		dTree := time.Since(start)
		// Raw interpreter against raw tree: probe Exec directly so both
		// sides skip the serving path's probability validation.
		start = time.Now()
		for i, h2 := range variants {
			pr, err := prog.Exec(h2.Probs())
			if err != nil {
				fatal(err)
			}
			if pr.Cmp(treeRes[i]) != 0 {
				match = false
			}
		}
		dExec := time.Since(start)
		emit("E21", fmt.Sprintf("%s n=%d tree x%d", wl.name, n, k),
			fmt.Sprintf("%d ops baseline", prog.NumOps()), dTree)
		emit("E21", fmt.Sprintf("%s n=%d exec x%d", wl.name, n, k),
			fmt.Sprintf("match=%v ×%.2f", match, float64(dTree)/float64(dExec)), dExec)

		// Part two: cold serving vs warm-start from a snapshot.
		serve := func(e *engine.Engine) (time.Duration, int) {
			hits := 0
			start := time.Now()
			for _, h2 := range variants {
				res := e.Do(engine.Job{Query: wl.q, Instance: h2, Opts: opts})
				if res.Err != nil {
					fatal(res.Err)
				}
				if res.PlanHit {
					hits++
				}
			}
			return time.Since(start), hits
		}
		cold := engine.New(engine.Options{Workers: 1})
		dCold, _ := serve(cold)
		var snap bytes.Buffer
		saved, err := cold.SavePlans(&snap)
		if err != nil {
			fatal(err)
		}
		if err := cold.Close(); err != nil {
			fatal(err)
		}
		warm := engine.New(engine.Options{Workers: 1})
		if _, err := warm.LoadPlans(bytes.NewReader(snap.Bytes())); err != nil {
			fatal(err)
		}
		dWarm, warmHits := serve(warm)
		st := warm.Stats()
		if err := warm.Close(); err != nil {
			fatal(err)
		}
		emit("E21", fmt.Sprintf("%s n=%d cold x%d", wl.name, n, k),
			fmt.Sprintf("snapshot=%d plans/%dB", saved, snap.Len()), dCold)
		emit("E21", fmt.Sprintf("%s n=%d warm x%d", wl.name, n, k),
			fmt.Sprintf("plan_hits=%d/%d compiles=%d ×%.2f", warmHits, k, st.PlanCompiles, float64(dCold)/float64(dWarm)), dWarm)
		if st.PlanCompiles != 0 {
			fatal(fmt.Errorf("E21: warm-started engine compiled %d plans, want 0", st.PlanCompiles))
		}
		if warmHits != k {
			fatal(fmt.Errorf("E21: warm-started engine served %d/%d plan hits", warmHits, k))
		}
	}
}

// runFloatPath covers E22: the dual-precision evaluation of the Program
// IR. Part one measures raw substrate throughput over a reweight stream
// on the 2WP and DWT workloads — the exact big.Rat interpreter
// (Program.Exec) against the certified float64 interval kernel
// (Program.ExecFloat) — asserting for every evaluation that the exact
// answer lies inside the kernel's reported enclosure (the containment
// guarantee is a hard invariant, so its violation aborts the harness).
// Part two sweeps the auto-mode tolerance and reports the fallback
// rate: how many evaluations the engine would answer from the float
// path at each tolerance, checking that every fallback answer is
// byte-identical to the exact one.
func runFloatPath() {
	if !section("E22", "Dual-precision: float64 interval kernel vs exact interpreter") {
		return
	}
	r := rand.New(rand.NewSource(*seed))
	one := []graph.Label{"R"}
	un := []graph.Label{graph.Unlabeled}
	n := *maxN / 4
	if n < 64 {
		n = 64
	}
	// Single-label workloads, so the query matches densely across the
	// instance and the lowered programs are genuinely linear-size (a
	// sparse-matching query prunes to a handful of ops, which would
	// benchmark per-call overhead instead of the substrates).
	workloads := []struct {
		name string
		q    *graph.Graph
		h    *graph.ProbGraph
	}{
		{"2WP (Prop 4.11)", graph.Path2WP(graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R"), graph.Bwd("R"), graph.Fwd("R")),
			gen.RandProb(r, gen.RandInClass(r, graph.Class2WP, n, one), 0.5)},
		{"DWT (Prop 3.6)", graph.UnlabeledPath(3),
			gen.RandProb(r, gen.RandInClass(r, graph.ClassUDWT, n, un), 0.5)},
	}
	opts := &core.Options{DisableFallback: true}
	for _, wl := range workloads {
		// Probabilities with four decimal digits, the shape of real
		// traffic ("0.8437"): non-dyadic, so the float path genuinely
		// rounds and the enclosure is exercised, and with denominators
		// that make exact products grow the way production reweights do.
		assignments := make([][]*big.Rat, *reweights)
		for i := range assignments {
			probs := make([]*big.Rat, wl.h.G.NumEdges())
			for ei := range probs {
				probs[ei] = big.NewRat(int64(r.Intn(10001)), 10000)
			}
			assignments[i] = probs
		}
		k := len(assignments)
		cp, err := core.Compile(wl.q, wl.h, opts)
		if err != nil {
			fatal(err)
		}
		prog := cp.Program()

		// Part one: substrate throughput, with containment checked on
		// every single evaluation.
		exact := make([]*big.Rat, k)
		start := time.Now()
		for i, probs := range assignments {
			if exact[i], err = prog.Exec(probs); err != nil {
				fatal(err)
			}
		}
		dExact := time.Since(start)
		enclosures := make([]plan.Enclosure, k)
		start = time.Now()
		for i, probs := range assignments {
			if enclosures[i], err = prog.ExecFloat(probs); err != nil {
				fatal(err)
			}
		}
		dFloat := time.Since(start)
		// Containment is verified outside the timed loop (the check
		// itself runs rational arithmetic).
		var maxWidth float64
		for i, iv := range enclosures {
			if !iv.Contains(exact[i]) {
				fatal(fmt.Errorf("E22: %s: exact answer %s outside certified enclosure [%g, %g]",
					wl.name, exact[i].RatString(), iv.Lo, iv.Hi))
			}
			if iv.Width() > maxWidth {
				maxWidth = iv.Width()
			}
		}
		emit("E22", fmt.Sprintf("%s n=%d exact x%d", wl.name, n, k),
			fmt.Sprintf("%d ops baseline", prog.NumOps()), dExact)
		emit("E22", fmt.Sprintf("%s n=%d float x%d", wl.name, n, k),
			fmt.Sprintf("contained=%d/%d width≤%.1e ×%.1f", k, k, maxWidth, float64(dExact)/float64(dFloat)), dFloat)

		// Part two: auto-mode fallback rate across tolerances. A
		// tolerance below the kernel's actual width forces exact
		// fallback on every job; anything above it serves pure float.
		for _, tol := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
			aopts := &core.Options{DisableFallback: true, Precision: core.PrecisionAuto, FloatTolerance: tol}
			fast, fallbacks := 0, 0
			start = time.Now()
			for i, probs := range assignments {
				res, err := cp.EvaluateOpts(probs, aopts)
				if err != nil {
					fatal(err)
				}
				if res.Precision == core.PrecisionFast {
					fast++
				} else {
					fallbacks++
					if res.Prob.Cmp(exact[i]) != 0 {
						fatal(fmt.Errorf("E22: %s: auto fallback diverged from exact", wl.name))
					}
				}
			}
			d := time.Since(start)
			emit("E22", fmt.Sprintf("%s n=%d auto tol=%.0e", wl.name, n, tol),
				fmt.Sprintf("fast=%d fallback=%d (%.0f%%)", fast, fallbacks, 100*float64(fallbacks)/float64(k)), d)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phombench:", err)
	os.Exit(1)
}
