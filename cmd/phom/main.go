// Command phom computes the probability that a query graph has a
// homomorphism to a probabilistic instance graph (the PHom problem of
// Amarilli, Monet & Senellart, PODS 2017).
//
// Usage:
//
//	phom -query q.graph -instance h.graph [flags]
//
// Graph files use the text format of internal/graphio:
//
//	vertices 4
//	edge 0 1 R
//	edge 1 2 S 1/2
//
// Flags select the method (auto routes to a PTIME algorithm when the
// input pair is tractable), print the class membership and the predicted
// combined complexity of the pair, override edge probabilities
// (-setprob "0>1=1/2,1>2=0.35") before solving, or export DOT.
//
// The solve runs under a signal-aware context: Ctrl-C (or SIGTERM)
// cancels even an exponential baseline at its next cooperative
// checkpoint, and the command exits with the typed cancellation error
// instead of having to be killed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"phom"
	"phom/internal/core"
	"phom/internal/graph"
	"phom/internal/graphio"
)

func main() {
	var (
		queryPath    = flag.String("query", "", "query graph file (required; repeat paths comma-separated for a union of conjunctive queries)")
		instancePath = flag.String("instance", "", "probabilistic instance graph file (required)")
		count        = flag.Bool("count", false, "unweighted mode: report the number of satisfying worlds (all uncertain edges must have probability 1/2)")
		method       = flag.String("method", "auto", "auto | brute | lineage")
		noFallback   = flag.Bool("no-fallback", false, "fail instead of using an exponential baseline on #P-hard inputs")
		bruteLimit   = flag.Int("brute-limit", core.DefaultBruteForceLimit, "max uncertain edges for brute force")
		setProb      = flag.String("setprob", "", "override edge probabilities before solving: comma-separated \"from>to=p\" pairs, p an exact rational like 1/2 or 0.35")
		classify     = flag.Bool("classify", false, "also print class membership and predicted complexity")
		float        = flag.Bool("float", false, "also print the probability as a float64 approximation")
		dot          = flag.String("dot", "", "write the instance as Graphviz DOT to this file and exit")
	)
	flag.Parse()
	if *queryPath == "" || *instancePath == "" {
		fmt.Fprintln(os.Stderr, "phom: -query and -instance are required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	queryPaths := strings.Split(*queryPath, ",")
	queries := make([]*graph.Graph, len(queryPaths))
	for i, p := range queryPaths {
		q, err := loadGraph(strings.TrimSpace(p))
		if err != nil {
			fatal(err)
		}
		queries[i] = q
	}
	query := queries[0]
	instance, err := loadProbGraph(*instancePath)
	if err != nil {
		fatal(err)
	}
	if *setProb != "" {
		if err := applySetProb(instance, *setProb); err != nil {
			fatal(err)
		}
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := graphio.WriteDOT(f, instance, "H"); err != nil {
			fatal(err)
		}
		return
	}

	if *classify {
		fmt.Printf("query classes:    %v\n", query.Classify())
		fmt.Printf("instance classes: %v\n", instance.G.Classify())
		qc, ic, labeled, v := core.PredictInput(query, instance)
		fmt.Printf("tightest cell:    (%v, %v) %s\n", qc, ic, settingName(labeled))
		fmt.Printf("predicted:        %v\n", v)
	}

	opts := &core.Options{
		BruteForceLimit: *bruteLimit,
		DisableFallback: *noFallback,
	}

	if *count {
		n, coins, err := core.CountWorldsContext(ctx, query, instance, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("satisfying worlds = %s of 2^%d\n", n, coins)
		return
	}

	var res *core.Result
	switch *method {
	case "auto":
		var req phom.Request
		if len(queries) > 1 {
			req = phom.NewUCQRequest(queries, instance, phom.WithOptions(opts))
		} else {
			req = phom.NewRequest(query, instance, phom.WithOptions(opts))
		}
		res, err = phom.SolveContext(ctx, req)
	case "brute":
		var p = new(core.Result)
		p.Method = core.MethodBruteForce
		p.Prob, err = core.BruteForceLimitContext(ctx, query, instance, *bruteLimit)
		res = p
	case "lineage":
		var p = new(core.Result)
		p.Method = core.MethodLineage
		p.Prob, err = core.LineageShannonContext(ctx, query, instance, 0)
		res = p
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Pr(G ~> H) = %s\n", res.Prob.RatString())
	if *float {
		f, _ := res.Prob.Float64()
		fmt.Printf("           ≈ %g\n", f)
	}
	fmt.Printf("method     = %s (ptime=%v)\n", res.Method, res.Method.PTime())
}

// applySetProb parses a comma-separated list of "from>to=p" overrides
// and applies them to the instance. Probabilities go through the
// non-panicking phom.ParseRat, so a malformed token is a typed
// bad-input error, never a panic.
func applySetProb(instance *graph.ProbGraph, spec string) error {
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		edge, val, found := strings.Cut(tok, "=")
		if !found {
			return fmt.Errorf("-setprob %q: want \"from>to=p\"", tok)
		}
		from, to, ok := graphio.ParseEdgeKey(edge)
		if !ok {
			return fmt.Errorf("-setprob %q: edge must be \"from>to\"", tok)
		}
		p, err := phom.ParseRat(strings.TrimSpace(val))
		if err != nil {
			return fmt.Errorf("-setprob %q: %w", tok, err)
		}
		if err := instance.SetEdgeProb(graph.Vertex(from), graph.Vertex(to), p); err != nil {
			return fmt.Errorf("-setprob %q: %w", tok, err)
		}
	}
	return nil
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ParseGraph(f)
}

func loadProbGraph(path string) (*graph.ProbGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ParseProbGraph(f)
}

func settingName(labeled bool) string {
	if labeled {
		return "labeled (PHomL)"
	}
	return "unlabeled (PHom̸L)"
}

// fatal reports the error with its taxonomy code when it carries one
// ("canceled", "bad-input", …), so scripted callers can distinguish a
// Ctrl-C from a genuine failure without parsing message text.
func fatal(err error) {
	var terr *phom.Error
	if errors.As(err, &terr) {
		fmt.Fprintf(os.Stderr, "phom: %v (%s)\n", err, phom.CodeOf(err))
	} else {
		fmt.Fprintln(os.Stderr, "phom:", err)
	}
	os.Exit(1)
}
